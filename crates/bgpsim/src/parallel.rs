//! Parallel per-origin sweeps with panic isolation.
//!
//! Every whole-Internet experiment (hierarchy-free reachability for all
//! ASes, leak CDFs, ...) is a map over independent origins; this helper
//! fans the map out over scoped threads with a static partition, so the
//! result is deterministic regardless of thread count.
//!
//! [`try_parallel_map`] additionally isolates panics: a closure that
//! panics on one item produces a per-item [`SweepError`] carrying the
//! panic message, while every other item still completes. The error
//! layout is identical for any thread count, including the sequential
//! fast path.
//!
//! The `_ctx` variants ([`parallel_map_ctx`] / [`try_parallel_map_ctx`])
//! additionally give every worker thread a private mutable context built
//! by a factory closure — the hook the batched engine uses to hand each
//! worker its own [`crate::engine::Workspace`] so a sweep does zero
//! steady-state allocation. The context never crosses threads, so it
//! needs neither `Send` nor `Sync`.

use flatnet_obs::{Counter, Gauge, Histogram};
use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Pre-resolved sweep metrics; items are timed individually, so handles
/// are looked up once and recorded lock-free from every worker thread.
/// `sweep.threads` is a gauge (instantaneous, thread-count dependent) and
/// is therefore excluded from cross-thread-count determinism comparisons;
/// the counters are exact regardless of partitioning.
struct SweepMetrics {
    items: Counter,
    panics: Counter,
    threads: Gauge,
    item_us: Arc<Histogram>,
}

fn metrics() -> &'static SweepMetrics {
    static METRICS: OnceLock<SweepMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = flatnet_obs::global();
        SweepMetrics {
            items: reg.counter("sweep.items"),
            panics: reg.counter("sweep.panics"),
            threads: reg.gauge("sweep.threads"),
            item_us: reg.histogram("sweep.item_us"),
        }
    })
}

/// The failure of a single sweep item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// Index of the item in the input slice.
    pub index: usize,
    /// The panic message (or a placeholder for non-string payloads).
    pub message: String,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sweep item {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for SweepError {}

/// Extracts a human-readable message from a panic payload.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_guarded<T, C, R, F>(f: &F, ctx: &mut C, item: &T, index: usize) -> Result<R, SweepError>
where
    F: Fn(&mut C, &T) -> R,
{
    let obs = metrics();
    let start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| f(ctx, item)));
    obs.item_us.record(start.elapsed());
    result.map_err(|payload| {
        obs.panics.inc();
        SweepError { index, message: panic_message(payload.as_ref()) }
    })
}

/// Applies `f(&mut ctx, item)` to every item, in parallel, preserving
/// order; each worker thread builds one private context with `mk_ctx`
/// and reuses it for all of its items. A panic in `f` becomes a per-item
/// `Err` instead of tearing down the sweep.
///
/// Uses `threads` workers, or the available parallelism when
/// `threads == 0`. The per-item results and error layout are identical
/// for any thread count (the context only affects performance — callers
/// must not let results depend on which items share a context).
pub fn try_parallel_map_ctx<T, C, R, M, F>(
    items: &[T],
    threads: usize,
    mk_ctx: M,
    f: F,
) -> Vec<Result<R, SweepError>>
where
    T: Sync,
    R: Send,
    M: Fn() -> C + Sync,
    F: Fn(&mut C, &T) -> R + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    };
    let threads = threads.min(items.len()).max(1);
    let obs = metrics();
    obs.items.add(items.len() as u64);
    obs.threads.set(threads as i64);
    if threads <= 1 || items.len() < 2 {
        let mut ctx = mk_ctx();
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| run_guarded(&f, &mut ctx, item, i))
            .collect();
    }

    let mut results: Vec<Option<Result<R, SweepError>>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(threads);

    std::thread::scope(|s| {
        let mut rest: &mut [Option<Result<R, SweepError>>] = &mut results;
        let mut offset = 0usize;
        let fref = &f;
        let mkref = &mk_ctx;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let slice = &items[offset..offset + take];
            let base = offset;
            s.spawn(move || {
                let mut ctx = mkref();
                for (i, (out, item)) in head.iter_mut().zip(slice).enumerate() {
                    *out = Some(run_guarded(fref, &mut ctx, item, base + i));
                }
            });
            rest = tail;
            offset += take;
        }
    });

    results.into_iter().map(|r| r.expect("all slots filled")).collect()
}

/// Applies `f(&mut ctx, item)` to every item, in parallel, preserving
/// order, with one context per worker thread (see
/// [`try_parallel_map_ctx`]). A panic in `f` aborts the whole sweep
/// (after all items have run) with a message naming the first offending
/// item.
pub fn parallel_map_ctx<T, C, R, M, F>(items: &[T], threads: usize, mk_ctx: M, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    M: Fn() -> C + Sync,
    F: Fn(&mut C, &T) -> R + Sync,
{
    try_parallel_map_ctx(items, threads, mk_ctx, f)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        })
        .collect()
}

/// Applies `f` to every item, in parallel, preserving order; a panic in
/// `f` becomes a per-item `Err` instead of tearing down the sweep.
///
/// `f` must be cheap to call from multiple threads concurrently (it gets
/// `&T` and may not mutate shared state). Uses `threads` workers, or the
/// available parallelism when `threads == 0`.
pub fn try_parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R, SweepError>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    try_parallel_map_ctx(items, threads, || (), |_ctx, item| f(item))
}

/// Applies `f` to every item, in parallel, preserving order.
///
/// A panic in `f` aborts the whole sweep (after all items have run) with
/// a message naming the first offending item; use [`try_parallel_map`]
/// to keep per-item results instead.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    try_parallel_map(items, threads, f)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, 4, |&x| x * x);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let items: Vec<u64> = (0..257).collect();
        let a = parallel_map(&items, 1, |&x| x.wrapping_mul(0x9E3779B9));
        let b = parallel_map(&items, 7, |&x| x.wrapping_mul(0x9E3779B9));
        let c = parallel_map(&items, 0, |&x| x.wrapping_mul(0x9E3779B9));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[42u32], 4, |&x| x + 1), vec![43]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = vec![1u32, 2, 3];
        assert_eq!(parallel_map(&items, 64, |&x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn panic_becomes_per_item_error() {
        let items: Vec<u32> = (0..100).collect();
        let out = try_parallel_map(&items, 4, |&x| {
            if x == 13 {
                panic!("unlucky origin {x}");
            }
            x * 2
        });
        assert_eq!(out.len(), items.len());
        for (i, r) in out.iter().enumerate() {
            if i == 13 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.index, 13);
                assert!(e.message.contains("unlucky origin 13"), "{e}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), (i as u32) * 2);
            }
        }
    }

    #[test]
    fn panic_isolation_identical_across_thread_counts() {
        let items: Vec<u32> = (0..61).collect();
        let run = |threads| {
            try_parallel_map(&items, threads, |&x| {
                if x % 17 == 5 {
                    panic!("bad item {x}");
                }
                x + 1
            })
        };
        let a = run(1);
        for threads in [2, 3, 8, 64, 0] {
            assert_eq!(run(threads), a, "threads={threads}");
        }
        assert_eq!(a.iter().filter(|r| r.is_err()).count(), 4);
    }

    #[test]
    fn strict_map_names_offending_item() {
        let items = vec![1u32, 2, 3];
        let caught = std::panic::catch_unwind(|| {
            parallel_map(&items, 1, |&x| {
                if x == 2 {
                    panic!("boom");
                }
                x
            })
        });
        let msg = panic_message(caught.unwrap_err().as_ref());
        assert!(msg.contains("sweep item 1"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn ctx_is_private_per_thread_and_reused_within_it() {
        // Each worker's context counts the items it processed; the sum
        // over all contexts must equal the item count, and a context is
        // reused (not rebuilt) across a worker's items.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let built = AtomicUsize::new(0);
        let items: Vec<u32> = (0..100).collect();
        let out = parallel_map_ctx(
            &items,
            4,
            || {
                built.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            |seen, &x| {
                *seen += 1;
                (x, *seen)
            },
        );
        assert_eq!(built.load(Ordering::SeqCst), 4);
        assert_eq!(out.len(), 100);
        // Per-context counters add up to the total item count.
        let total: usize = out.iter().filter(|(_, seen)| *seen == 25).count();
        assert_eq!(total, 4, "each of 4 workers processes 25 items: {out:?}");
    }

    #[test]
    fn ctx_sequential_path_builds_one_context() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let built = AtomicUsize::new(0);
        let items: Vec<u32> = (0..10).collect();
        let out = parallel_map_ctx(
            &items,
            1,
            || {
                built.fetch_add(1, Ordering::SeqCst);
            },
            |_ctx, &x| x + 1,
        );
        assert_eq!(built.load(Ordering::SeqCst), 1);
        assert_eq!(out, (1..=10).collect::<Vec<u32>>());
    }
}
