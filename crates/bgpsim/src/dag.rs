//! The tied-best next-hop DAG of a propagation outcome.
//!
//! Because the simulator keeps *all* routes tied for best (§6.1/§7.1), each
//! AS may have several next hops toward the origin. The set of tied-best
//! AS paths from `t` is exactly the set of paths from `t` to the origin in
//! this DAG. The DAG is acyclic because every hop decreases the selected
//! path length by exactly one.

use crate::propagate::{PropagationConfig, RoutingOutcome};
use flatnet_asgraph::{AsGraph, NodeId};

/// CSR-packed next-hop DAG with per-node tied-best path counts.
#[derive(Debug, Clone)]
pub struct NextHopDag {
    origin: NodeId,
    offsets: Vec<u32>,
    hops: Vec<NodeId>,
    /// Nodes ordered by increasing selected path length (topological order
    /// from the origin outward). Unreachable nodes are absent.
    topo: Vec<NodeId>,
    /// Selected path length per node (`u32::MAX` if unreachable).
    dist: Vec<u32>,
    /// Tied-best path count per node, as f64 (counts can be astronomically
    /// large; relative magnitudes are what reliance needs).
    counts: Vec<f64>,
}

impl NextHopDag {
    /// Materializes the DAG for `outcome` (computed on `g` under `cfg` —
    /// pass the same values or next hops will be inconsistent).
    pub fn build(g: &AsGraph, cfg: &PropagationConfig, outcome: &RoutingOutcome) -> Self {
        let n = g.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut hops = Vec::new();
        let mut dist = vec![u32::MAX; n];
        offsets.push(0u32);
        for i in 0..n as u32 {
            let u = NodeId(i);
            let nh = outcome.next_hops(g, cfg, u);
            hops.extend_from_slice(&nh);
            offsets.push(hops.len() as u32);
            if let Some((_, l)) = outcome.selection(u) {
                dist[u.idx()] = l;
            }
        }
        // Topological order: by increasing selected length, then node index.
        let mut topo: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|&u| dist[u.idx()] != u32::MAX)
            .collect();
        topo.sort_by_key(|&u| (dist[u.idx()], u));

        // Path counts: N(origin) = 1; N(u) = sum of N(next hop).
        let mut counts = vec![0.0f64; n];
        for &u in &topo {
            if u == outcome.origin() {
                counts[u.idx()] = 1.0;
                continue;
            }
            let (s, e) = (offsets[u.idx()] as usize, offsets[u.idx() + 1] as usize);
            let mut total = 0.0;
            for &h in &hops[s..e] {
                total += counts[h.idx()];
            }
            counts[u.idx()] = total;
        }
        NextHopDag { origin: outcome.origin(), offsets, hops, topo, dist, counts }
    }

    /// The origin node.
    pub fn origin(&self) -> NodeId {
        self.origin
    }

    /// Tied-best next hops of `u`, sorted by node index.
    #[inline]
    pub fn next_hops(&self, u: NodeId) -> &[NodeId] {
        &self.hops[self.offsets[u.idx()] as usize..self.offsets[u.idx() + 1] as usize]
    }

    /// Selected path length of `u` (`None` if unreachable).
    #[inline]
    pub fn dist(&self, u: NodeId) -> Option<u32> {
        let d = self.dist[u.idx()];
        (d != u32::MAX).then_some(d)
    }

    /// Number of tied-best paths from `u` to the origin (0.0 when
    /// unreachable, 1.0 for the origin itself).
    #[inline]
    pub fn path_count(&self, u: NodeId) -> f64 {
        self.counts[u.idx()]
    }

    /// Exact tied-best path count, saturating at `u128::MAX` (for tests and
    /// small topologies).
    pub fn path_count_exact(&self, u: NodeId) -> u128 {
        let mut counts = vec![0u128; self.dist.len()];
        for &v in &self.topo {
            if v == self.origin {
                counts[v.idx()] = 1;
                continue;
            }
            let mut total = 0u128;
            for &h in self.next_hops(v) {
                total = total.saturating_add(counts[h.idx()]);
            }
            counts[v.idx()] = total;
        }
        counts[u.idx()]
    }

    /// Reachable nodes in topological (origin-outward) order.
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Number of nodes in the underlying graph (reachable or not).
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// Whether the underlying graph was empty.
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }

    /// Number of reachable nodes (including the origin).
    pub fn reachable_len(&self) -> usize {
        self.topo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate::propagate;
    use flatnet_asgraph::{AsGraphBuilder, AsId, Relationship};

    fn node(g: &AsGraph, asn: u32) -> NodeId {
        g.index_of(AsId(asn)).unwrap()
    }

    /// Figure-5-style topology: origin 1; 2, 3, 4 its providers; 5 provider
    /// of 2 and 3; 6 provider of 4; 7 provider of 5 and 6.
    fn fig5() -> AsGraph {
        let mut b = AsGraphBuilder::new();
        for p in [2, 3, 4] {
            b.add_link(AsId(p), AsId(1), Relationship::P2c);
        }
        b.add_link(AsId(5), AsId(2), Relationship::P2c);
        b.add_link(AsId(5), AsId(3), Relationship::P2c);
        b.add_link(AsId(6), AsId(4), Relationship::P2c);
        b.add_link(AsId(7), AsId(5), Relationship::P2c);
        b.add_link(AsId(7), AsId(6), Relationship::P2c);
        b.build()
    }

    #[test]
    fn path_counts_match_fig5() {
        let g = fig5();
        let opts = PropagationConfig::default();
        let out = propagate(&g, node(&g, 1), &opts);
        let dag = NextHopDag::build(&g, &opts, &out);
        assert_eq!(dag.path_count(node(&g, 1)), 1.0);
        assert_eq!(dag.path_count(node(&g, 5)), 2.0); // via 2 or 3
        assert_eq!(dag.path_count(node(&g, 6)), 1.0); // via 4
        assert_eq!(dag.path_count(node(&g, 7)), 3.0); // 2 via 5 + 1 via 6
        assert_eq!(dag.path_count_exact(node(&g, 7)), 3);
        assert_eq!(dag.reachable_len(), 7);
    }

    #[test]
    fn topo_order_is_origin_outward() {
        let g = fig5();
        let opts = PropagationConfig::default();
        let out = propagate(&g, node(&g, 1), &opts);
        let dag = NextHopDag::build(&g, &opts, &out);
        let order = dag.topo_order();
        assert_eq!(order[0], node(&g, 1));
        // Every next hop of a node appears before the node itself.
        let pos: std::collections::HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for &u in order {
            for &h in dag.next_hops(u) {
                assert!(pos[&h] < pos[&u], "{h} should precede {u}");
            }
        }
    }

    #[test]
    fn unreachable_nodes_have_zero_count() {
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(1), AsId(2), Relationship::P2p);
        b.add_isolated(AsId(9));
        let g = b.build();
        let opts = PropagationConfig::default();
        let out = propagate(&g, node(&g, 1), &opts);
        let dag = NextHopDag::build(&g, &opts, &out);
        assert_eq!(dag.path_count(node(&g, 9)), 0.0);
        assert_eq!(dag.dist(node(&g, 9)), None);
        assert_eq!(dag.dist(node(&g, 2)), Some(1));
        assert_eq!(dag.reachable_len(), 2);
    }

    #[test]
    fn exponential_tie_fan_exact_counts() {
        // A ladder of k diamond levels gives 2^k tied paths.
        let mut b = AsGraphBuilder::new();
        let k = 20;
        b.add_isolated(AsId(1));
        // Node numbering: joint of level i is 100*i (origin = AS 1 at level
        // 0); the two mid nodes of level i are 100*i + 11 and 100*i + 12.
        for i in 0..k {
            let joint = if i == 0 { 1 } else { 100 * i };
            let next_joint = 100 * (i + 1);
            for mid in [100 * i + 11, 100 * i + 12] {
                b.add_link(AsId(mid), AsId(joint), Relationship::P2c);
                b.add_link(AsId(next_joint), AsId(mid), Relationship::P2c);
            }
        }
        let g = b.build();
        let opts = PropagationConfig::default();
        let out = propagate(&g, node(&g, 1), &opts);
        let dag = NextHopDag::build(&g, &opts, &out);
        let top = node(&g, 100 * k);
        assert_eq!(dag.path_count_exact(top), 1u128 << k);
        assert!((dag.path_count(top) - (1u128 << k) as f64).abs() < 1e-6);
    }
}
