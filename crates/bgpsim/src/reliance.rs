//! Reachability reliance, `rely(o, a)` (§7.1).
//!
//! The paper defines the reliance of an origin `o` on an AS `a` as the sum,
//! over every AS `t` that receives routes to `o`, of the fraction of `t`'s
//! tied-best paths in which `a` appears. We adopt the convention that a
//! path "received by `t`" includes `t` itself, which reproduces both
//! extremes the paper calibrates against:
//!
//! * a **full mesh** (everyone peers with everyone) gives `rely(o, a) = 1`
//!   for every `a`: the only path containing `a` is `a`'s own direct path;
//! * a **pure hierarchy** with a single provider `P` above `o` gives
//!   `rely(o, P) =` (number of ASes receiving routes): every path crosses
//!   `P`.
//!
//! Computed exactly in one O(E) sweep over the next-hop DAG: a uniformly
//! random tied-best path from `t` moves from `v` to next hop `h` with
//! probability `N(h)/N(v)` (`N` = tied-best path counts), making it uniform
//! over `t`'s paths. The visit mass `W(u) = Σ_t P[path from t visits u]`
//! then satisfies `W(u) = 1 + Σ_{v: u ∈ NH(v)} W(v) · N(u)/N(v)`, evaluated
//! in reverse topological order. `rely(o, u) = W(u)` for every reachable
//! `u ≠ o` (and `W(o)` is the total number of ASes with routes, a useful
//! cross-check).

use crate::dag::NextHopDag;

/// Computes `rely(origin, a)` for **every** AS `a` from a next-hop DAG.
///
/// Returns a vector indexed by node: `0.0` for unreachable nodes, `W(a)`
/// (in units of "ASes", the paper's unit) otherwise. The entry for the
/// origin equals the total number of ASes holding routes (including the
/// origin itself).
pub fn reliance(dag: &NextHopDag) -> Vec<f64> {
    let mut w = vec![0.0f64; dag.len()];
    // Every reachable node starts a unit of visit mass at itself.
    for &u in dag.topo_order() {
        w[u.idx()] += 1.0;
    }
    // Reverse topological order: farthest nodes first, so each W(v) is
    // final before its mass is pushed to its next hops.
    for &v in dag.topo_order().iter().rev() {
        let wv = w[v.idx()];
        let nv = dag.path_count(v);
        if nv == 0.0 {
            continue;
        }
        for &h in dag.next_hops(v) {
            w[h.idx()] += wv * dag.path_count(h) / nv;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate::{propagate, PropagationConfig};
    use flatnet_asgraph::{AsGraph, AsGraphBuilder, AsId, NodeId, Relationship};

    fn node(g: &AsGraph, asn: u32) -> NodeId {
        g.index_of(AsId(asn)).unwrap()
    }

    fn rely_of(g: &AsGraph, origin: u32) -> (AsGraph, Vec<f64>) {
        let opts = PropagationConfig::default();
        let out = propagate(g, node(g, origin), &opts);
        let dag = NextHopDag::build(g, &opts, &out);
        let w = reliance(&dag);
        (g.clone(), w)
    }

    #[test]
    fn full_mesh_reliance_is_one_everywhere() {
        // 5 ASes all peering with each other.
        let mut b = AsGraphBuilder::new();
        for a in 1..=5u32 {
            for c in (a + 1)..=5 {
                b.add_link(AsId(a), AsId(c), Relationship::P2p);
            }
        }
        let g = b.build();
        let (_, w) = rely_of(&g, 1);
        for asn in 2..=5u32 {
            assert!((w[node(&g, asn).idx()] - 1.0).abs() < 1e-12, "AS{asn}: {}", w[node(&g, asn).idx()]);
        }
        // Origin's W = all 5 ASes hold routes.
        assert!((w[node(&g, 1).idx()] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn pure_hierarchy_reliance_on_sole_provider_is_everyone() {
        // o=1 under provider 2; 2 under provider 3; 3 has another customer
        // subtree 4 -> {5, 6}.
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(2), AsId(1), Relationship::P2c);
        b.add_link(AsId(3), AsId(2), Relationship::P2c);
        b.add_link(AsId(3), AsId(4), Relationship::P2c);
        b.add_link(AsId(4), AsId(5), Relationship::P2c);
        b.add_link(AsId(4), AsId(6), Relationship::P2c);
        let g = b.build();
        let (_, w) = rely_of(&g, 1);
        // Every one of the 6 ASes holds a route; all of 2..6's paths (and
        // 2's own) pass through 2.
        assert!((w[node(&g, 1).idx()] - 6.0).abs() < 1e-12);
        assert!((w[node(&g, 2).idx()] - 5.0).abs() < 1e-12); // 2,3,4,5,6
        assert!((w[node(&g, 3).idx()] - 4.0).abs() < 1e-12); // 3,4,5,6
        assert!((w[node(&g, 4).idx()] - 3.0).abs() < 1e-12); // 4,5,6
        assert!((w[node(&g, 5).idx()] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fig5_fractional_reliance() {
        // Origin 1; providers 2, 3, 4; 5 above {2,3}; 6 above {4};
        // 7 above {5,6}. From 7 there are 3 tied paths: 5-2, 5-3, 6-4.
        let mut b = AsGraphBuilder::new();
        for p in [2, 3, 4] {
            b.add_link(AsId(p), AsId(1), Relationship::P2c);
        }
        b.add_link(AsId(5), AsId(2), Relationship::P2c);
        b.add_link(AsId(5), AsId(3), Relationship::P2c);
        b.add_link(AsId(6), AsId(4), Relationship::P2c);
        b.add_link(AsId(7), AsId(5), Relationship::P2c);
        b.add_link(AsId(7), AsId(6), Relationship::P2c);
        let g = b.build();
        let (_, w) = rely_of(&g, 1);
        // W(5): itself 1 + from 7: 2/3 of 7's paths go via 5 = 5/3.
        assert!((w[node(&g, 5).idx()] - (1.0 + 2.0 / 3.0)).abs() < 1e-12);
        // W(6): itself + 1/3 from 7.
        assert!((w[node(&g, 6).idx()] - (1.0 + 1.0 / 3.0)).abs() < 1e-12);
        // W(2): itself + 1/2 of 5's mass (5's W = 5/3, half flows to 2)
        //        = 1 + (5/3)/2 = 11/6.
        assert!((w[node(&g, 2).idx()] - (1.0 + 5.0 / 6.0)).abs() < 1e-12);
        // W(4): itself + all of 6's mass = 1 + 4/3 = 7/3.
        assert!((w[node(&g, 4).idx()] - (1.0 + 4.0 / 3.0)).abs() < 1e-12);
        // Origin: 7 ASes hold routes.
        assert!((w[node(&g, 1).idx()] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn reliance_conserves_total_mass() {
        // Sum over non-origin nodes of (W(u) - 1) equals the expected number
        // of intermediate hops summed over all receivers, and W(origin)
        // equals the number of receivers. Check consistency: for each t the
        // random path visits exactly dist(t) + 1 nodes including t and o.
        let mut b = AsGraphBuilder::new();
        // Small mixed topology.
        b.add_link(AsId(2), AsId(1), Relationship::P2c);
        b.add_link(AsId(3), AsId(2), Relationship::P2c);
        b.add_link(AsId(3), AsId(4), Relationship::P2c);
        b.add_link(AsId(1), AsId(5), Relationship::P2p);
        b.add_link(AsId(5), AsId(6), Relationship::P2c);
        let g = b.build();
        let opts = PropagationConfig::default();
        let out = propagate(&g, node(&g, 1), &opts);
        let dag = NextHopDag::build(&g, &opts, &out);
        let w = reliance(&dag);
        let total_w: f64 = dag.topo_order().iter().map(|&u| w[u.idx()]).sum();
        let expected: f64 = dag
            .topo_order()
            .iter()
            .map(|&u| (dag.dist(u).unwrap() + 1) as f64)
            .sum();
        assert!((total_w - expected).abs() < 1e-9, "{total_w} vs {expected}");
    }

    /// Brute-force cross-check on random DAG-inducing topologies.
    mod prop {
        use super::*;
        use crate::paths::enumerate_paths;
        use proptest::prelude::*;

        /// Acyclic random graphs (provider = smaller ASN), matching the
        /// Gao-Rexford domain.
        fn arb_graph() -> impl Strategy<Value = AsGraph> {
            proptest::collection::vec((0u32..8, 0u32..8, 0u8..2), 1..24).prop_map(|links| {
                let mut b = AsGraphBuilder::new();
                for (a, c, r) in links {
                    if a == c {
                        continue;
                    }
                    if r == 1 {
                        b.add_link(AsId(a), AsId(c), Relationship::P2p);
                    } else {
                        b.add_link(AsId(a.min(c)), AsId(a.max(c)), Relationship::P2c);
                    }
                }
                b.add_isolated(AsId(99));
                b.build()
            })
        }

        proptest! {
            #[test]
            fn matches_brute_force_path_enumeration(g in arb_graph(), seed in 0u32..8) {
                let origin = NodeId(seed % g.len() as u32);
                let opts = PropagationConfig::default();
                let out = propagate(&g, origin, &opts);
                let dag = NextHopDag::build(&g, &opts, &out);
                let w = reliance(&dag);
                // Brute force: enumerate all tied-best paths per receiver.
                let mut expect = vec![0.0f64; g.len()];
                for &t in dag.topo_order() {
                    let paths = enumerate_paths(&dag, t, 10_000).unwrap();
                    let per_path = 1.0 / paths.len() as f64;
                    for p in &paths {
                        // Paths include t itself and the origin.
                        for &hop in p {
                            expect[hop.idx()] += per_path;
                        }
                    }
                }
                for u in g.nodes() {
                    prop_assert!((w[u.idx()] - expect[u.idx()]).abs() < 1e-9,
                        "node {}: got {} want {}", u, w[u.idx()], expect[u.idx()]);
                }
            }
        }
    }
}
