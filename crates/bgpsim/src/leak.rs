//! Route-leak resilience simulation (§8).
//!
//! A *misconfigured AS* (the leaker) announces the same prefix as a cloud
//! provider (the victim) to all of its neighbors. Both announcements
//! propagate under normal valley-free policy and "the two routes compete
//! for propagation based on AS-path length" after local preference. An AS
//! is **detoured** if *any* of its tied-best routes leads to the leaker —
//! the paper's explicit worst-case tie handling.
//!
//! Peer locking (per the paper's published erratum): a deploying neighbor
//! of the victim discards routes for the victim's prefixes received from
//! anyone but the victim itself. In simulator terms the deployer's import
//! policy is [`ImportPolicy::OnlyDirectFromOrigin`] for the victim's
//! announcement and [`ImportPolicy::Never`] for the leaker's, so leaked
//! routes never propagate *through* a locking AS.
//!
//! Leak CDFs run thousands of scenarios over one topology; [`LeakSim`]
//! holds two engine workspaces plus the per-scenario policy buffers and
//! refills them in place, so a sweep of scenarios does zero steady-state
//! allocation. [`simulate_leak`] / [`simulate_subprefix_hijack`] remain
//! as one-shot conveniences that compile a snapshot per call.

use crate::engine::{run_into, Simulation, TopologySnapshot, Workspace};
use crate::propagate::{ImportPolicy, PolicyView, PropagationConfig};
use flatnet_asgraph::{AsGraph, NodeId};

/// How one AS routes the contested prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetourState {
    /// All tied-best routes lead to the legitimate origin.
    Legit,
    /// At least one tied-best route leads to the leaker (worst case).
    Detoured,
    /// The AS received no route to the prefix at all.
    NoRoute,
}

/// Which peer-locking semantics to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LockingSemantics {
    /// The published erratum's corrected behaviour: a deploying AS accepts
    /// the victim's prefix only directly from the victim, so leaked copies
    /// can never propagate *through* it.
    #[default]
    Corrected,
    /// The paper's original simulation flaw: deployers filtered leaks
    /// announced directly to them, but copies that first passed through a
    /// non-deploying AS were accepted and re-propagated — underestimating
    /// peer locking's benefit. Kept for the erratum ablation.
    PreErratum,
}

/// One leak experiment configuration.
#[derive(Debug, Clone)]
pub struct LeakScenario {
    /// The legitimate origin (cloud provider).
    pub victim: NodeId,
    /// The misconfigured AS leaking the prefix (announces to all neighbors).
    pub leaker: NodeId,
    /// Neighbors the victim announces to; `None` = all neighbors
    /// (§8.2's announcement configurations).
    pub victim_export: Option<Vec<NodeId>>,
    /// Victim neighbors deploying peer locking for the victim's prefixes.
    pub locking: Vec<NodeId>,
    /// Corrected (erratum) vs original peer-locking semantics.
    pub semantics: LockingSemantics,
}

impl LeakScenario {
    /// A plain scenario: victim announces to all, no peer locking.
    pub fn simple(victim: NodeId, leaker: NodeId) -> Self {
        LeakScenario {
            victim,
            leaker,
            victim_export: None,
            locking: Vec::new(),
            semantics: LockingSemantics::Corrected,
        }
    }
}

/// Outcome of a leak simulation.
#[derive(Debug, Clone)]
pub struct LeakOutcome {
    victim: NodeId,
    leaker: NodeId,
    states: Vec<DetourState>,
}

impl LeakOutcome {
    /// Per-node routing states, indexed by node.
    pub fn states(&self) -> &[DetourState] {
        &self.states
    }

    /// State of one node.
    pub fn state(&self, n: NodeId) -> DetourState {
        self.states[n.idx()]
    }

    /// The legitimate origin.
    pub fn victim(&self) -> NodeId {
        self.victim
    }

    /// The leaker.
    pub fn leaker(&self) -> NodeId {
        self.leaker
    }

    /// Number of detoured ASes (the leaker itself counts: its traffic to
    /// the prefix terminates locally).
    pub fn detoured_count(&self) -> usize {
        self.states.iter().filter(|&&s| s == DetourState::Detoured).count()
    }

    /// Fraction of all ASes in the topology that are detoured — the
    /// quantity on the x-axis of Figures 7, 8, and 10.
    pub fn fraction_detoured(&self) -> f64 {
        if self.states.is_empty() {
            return 0.0;
        }
        self.detoured_count() as f64 / self.states.len() as f64
    }

    /// Weighted detour fraction: share of `weights` mass (e.g. estimated
    /// user population per AS, Fig. 9) sitting in detoured ASes. Zero when
    /// the total weight is zero.
    pub fn weighted_fraction_detoured(&self, weights: &[f64]) -> f64 {
        assert_eq!(weights.len(), self.states.len(), "weights must cover every node");
        let total: f64 = weights.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        let detoured: f64 = self
            .states
            .iter()
            .zip(weights)
            .filter(|(s, _)| **s == DetourState::Detoured)
            .map(|(_, w)| *w)
            .sum();
        detoured / total
    }
}

/// A reusable leak simulator over a compiled topology snapshot.
///
/// Holds the victim's and leaker's propagation workspaces plus the three
/// per-scenario policy buffers; running another scenario refills them in
/// place. Leak CDF sweeps create one `LeakSim` per worker thread (via
/// `parallel_map_ctx`) and run every sampled leaker through it.
#[derive(Debug)]
pub struct LeakSim<'s> {
    snap: &'s TopologySnapshot,
    victim_ws: Workspace,
    leak_ws: Workspace,
    victim_import: Vec<ImportPolicy>,
    leak_import: Vec<ImportPolicy>,
    export_mask: Vec<bool>,
}

impl<'s> LeakSim<'s> {
    /// A simulator with buffers sized for `snap`.
    pub fn new(snap: &'s TopologySnapshot) -> Self {
        let n = snap.len();
        LeakSim {
            snap,
            victim_ws: Workspace::for_snapshot(snap),
            leak_ws: Workspace::for_snapshot(snap),
            victim_import: vec![ImportPolicy::Normal; n],
            leak_import: vec![ImportPolicy::Normal; n],
            export_mask: vec![false; n],
        }
    }

    /// Propagates the victim's announcement under the scenario's locking
    /// and export configuration.
    fn propagate_victim(&mut self, scenario: &LeakScenario) {
        // Victim propagation: under corrected semantics, locking neighbors
        // accept only the direct route. Under the pre-erratum semantics the
        // legitimate propagation was unrestricted.
        self.victim_import.fill(ImportPolicy::Normal);
        if scenario.semantics == LockingSemantics::Corrected {
            for &l in &scenario.locking {
                if l != scenario.victim {
                    self.victim_import[l.idx()] = ImportPolicy::OnlyDirectFromOrigin;
                }
            }
        }
        let origin_export = if let Some(list) = &scenario.victim_export {
            self.export_mask.fill(false);
            for &x in list {
                self.export_mask[x.idx()] = true;
            }
            Some(self.export_mask.as_slice())
        } else {
            None
        };
        let pol = PolicyView {
            excluded: None,
            origin_export,
            import: Some(&self.victim_import),
        };
        run_into(self.snap, scenario.victim, &pol, &mut self.victim_ws);
    }

    /// Propagates the leaker's announcement under the scenario's locking
    /// configuration.
    fn propagate_leaker(&mut self, scenario: &LeakScenario) {
        // Under corrected semantics locking ASes never accept the leaked
        // copy, so it cannot pass through them either; under pre-erratum
        // semantics they only filter the copy announced to them directly
        // by the leaker.
        self.leak_import.fill(ImportPolicy::Normal);
        for &l in &scenario.locking {
            self.leak_import[l.idx()] = match scenario.semantics {
                LockingSemantics::Corrected => ImportPolicy::Never,
                LockingSemantics::PreErratum => ImportPolicy::RejectDirectFromOrigin,
            };
        }
        // The victim itself never accepts the leaked route for its own prefix.
        self.leak_import[scenario.victim.idx()] = ImportPolicy::Never;
        let pol =
            PolicyView { excluded: None, origin_export: None, import: Some(&self.leak_import) };
        run_into(self.snap, scenario.leaker, &pol, &mut self.leak_ws);
    }

    fn propagate_pair(&mut self, scenario: &LeakScenario) {
        assert_ne!(scenario.victim, scenario.leaker, "victim cannot leak its own prefix");
        self.propagate_victim(scenario);
        self.propagate_leaker(scenario);
    }

    /// State of node `t` after [`Self::propagate_pair`].
    #[inline]
    fn state_of(&self, scenario: &LeakScenario, t: NodeId) -> DetourState {
        if t == scenario.victim {
            return DetourState::Legit;
        }
        if t == scenario.leaker {
            return DetourState::Detoured;
        }
        match (self.victim_ws.selection(t), self.leak_ws.selection(t)) {
            (None, None) => DetourState::NoRoute,
            (Some(_), None) => DetourState::Legit,
            (None, Some(_)) => DetourState::Detoured,
            // Lexicographic (class, length); the leaked route wins ties in
            // the worst-case analysis.
            (Some(l), Some(m)) => {
                if m <= l {
                    DetourState::Detoured
                } else {
                    DetourState::Legit
                }
            }
        }
    }

    /// Runs one scenario, returning the full per-node outcome.
    ///
    /// Panics if `victim == leaker` (a meaningless configuration callers
    /// are expected to avoid when sampling misconfigured ASes).
    pub fn run(&mut self, scenario: &LeakScenario) -> LeakOutcome {
        self.propagate_pair(scenario);
        let n = self.snap.len();
        let states =
            (0..n as u32).map(|i| self.state_of(scenario, NodeId(i))).collect();
        LeakOutcome { victim: scenario.victim, leaker: scenario.leaker, states }
    }

    /// Runs one scenario and returns only the (optionally weighted) detour
    /// fraction, without materializing the per-node state vector — the
    /// zero-allocation form the CDF sweeps use.
    ///
    /// `weights: None` is [`LeakOutcome::fraction_detoured`];
    /// `Some(w)` is [`LeakOutcome::weighted_fraction_detoured`].
    pub fn fraction(&mut self, scenario: &LeakScenario, weights: Option<&[f64]>) -> f64 {
        self.propagate_pair(scenario);
        self.fraction_of_states(scenario, weights)
    }

    /// Runs a sub-prefix hijack scenario (see [`simulate_subprefix_hijack`]).
    pub fn run_subprefix(&mut self, scenario: &LeakScenario) -> LeakOutcome {
        assert_ne!(scenario.victim, scenario.leaker, "victim cannot leak its own prefix");
        self.propagate_leaker(scenario);
        let n = self.snap.len();
        let states = (0..n as u32)
            .map(|i| self.subprefix_state_of(scenario, NodeId(i)))
            .collect();
        LeakOutcome { victim: scenario.victim, leaker: scenario.leaker, states }
    }

    /// Sub-prefix hijack detour fraction without the per-node state vector.
    pub fn subprefix_fraction(
        &mut self,
        scenario: &LeakScenario,
        weights: Option<&[f64]>,
    ) -> f64 {
        assert_ne!(scenario.victim, scenario.leaker, "victim cannot leak its own prefix");
        self.propagate_leaker(scenario);
        let n = self.snap.len();
        match weights {
            None => {
                if n == 0 {
                    return 0.0;
                }
                let detoured = (0..n as u32)
                    .filter(|&i| {
                        self.subprefix_state_of(scenario, NodeId(i)) == DetourState::Detoured
                    })
                    .count();
                detoured as f64 / n as f64
            }
            Some(w) => {
                assert_eq!(w.len(), n, "weights must cover every node");
                let total: f64 = w.iter().sum();
                if total == 0.0 {
                    return 0.0;
                }
                let detoured: f64 = (0..n as u32)
                    .filter(|&i| {
                        self.subprefix_state_of(scenario, NodeId(i)) == DetourState::Detoured
                    })
                    .map(|i| w[i as usize])
                    .sum();
                detoured / total
            }
        }
    }

    #[inline]
    fn subprefix_state_of(&self, scenario: &LeakScenario, t: NodeId) -> DetourState {
        if t == scenario.victim {
            DetourState::Legit
        } else if t == scenario.leaker || self.leak_ws.reachable(t) {
            // LPM: any AS with the sub-prefix routes to the hijacker.
            DetourState::Detoured
        } else {
            // The covering legitimate prefix still serves everyone else;
            // treat "no sub-prefix route" as staying legit (the victim's
            // announcement configuration is irrelevant under LPM).
            DetourState::Legit
        }
    }

    fn fraction_of_states(&self, scenario: &LeakScenario, weights: Option<&[f64]>) -> f64 {
        let n = self.snap.len();
        match weights {
            None => {
                if n == 0 {
                    return 0.0;
                }
                let detoured = (0..n as u32)
                    .filter(|&i| self.state_of(scenario, NodeId(i)) == DetourState::Detoured)
                    .count();
                detoured as f64 / n as f64
            }
            Some(w) => {
                assert_eq!(w.len(), n, "weights must cover every node");
                let total: f64 = w.iter().sum();
                if total == 0.0 {
                    return 0.0;
                }
                let detoured: f64 = (0..n as u32)
                    .filter(|&i| self.state_of(scenario, NodeId(i)) == DetourState::Detoured)
                    .map(|i| w[i as usize])
                    .sum();
                detoured / total
            }
        }
    }
}

/// Batch sub-prefix hijack: the (optionally weighted) detour fraction
/// for every leaker in `leakers`, under one victim / locking / semantics
/// configuration — the kernel-backed form of
/// [`LeakSim::subprefix_fraction`], bit-identical to running it per
/// leaker.
///
/// Sub-prefix detours are pure reach sets (longest-prefix match decides,
/// so there is no route competition), and the leaker propagation's
/// import policy depends only on the victim and the locking set — shared
/// by every leaker. That makes the whole CDF one multi-origin sweep:
/// leakers are packed 64 per block through
/// [`Simulation::run_sweep_reach`], each word-wise frontier expansion
/// advancing 64 hijacks at once. Note the per-lane policy semantics:
/// under [`LockingSemantics::PreErratum`] a locking AS rejects routes
/// *directly from the origin*, and "the origin" differs per lane — the
/// kernel's origin-membership words resolve that per bit.
pub fn subprefix_detour_fractions(
    snap: &TopologySnapshot,
    victim: NodeId,
    leakers: &[NodeId],
    locking: &[NodeId],
    semantics: LockingSemantics,
    weights: Option<&[f64]>,
    threads: usize,
) -> Vec<f64> {
    for &l in leakers {
        assert_ne!(victim, l, "victim cannot leak its own prefix");
    }
    let n = snap.len();
    if n == 0 {
        return vec![0.0; leakers.len()];
    }
    let mut import = vec![ImportPolicy::Normal; n];
    for &l in locking {
        import[l.idx()] = match semantics {
            LockingSemantics::Corrected => ImportPolicy::Never,
            LockingSemantics::PreErratum => ImportPolicy::RejectDirectFromOrigin,
        };
    }
    // The victim itself never accepts the leaked route for its own prefix.
    import[victim.idx()] = ImportPolicy::Never;
    let sim = Simulation::over(snap)
        .config(PropagationConfig::new().with_import(import))
        .threads(threads);
    let reach = sim.run_sweep_reach(leakers);
    match weights {
        None => (0..leakers.len())
            // Every AS holding the sub-prefix is detoured; the leaker's
            // own origin bit is set (its traffic terminates locally), and
            // the victim's import policy keeps its bit clear.
            .map(|i| (reach.reachable_count(i) + 1) as f64 / n as f64)
            .collect(),
        Some(w) => {
            assert_eq!(w.len(), n, "weights must cover every node");
            let total: f64 = w.iter().sum();
            (0..leakers.len())
                .map(|i| {
                    if total == 0.0 {
                        return 0.0;
                    }
                    let mut detoured = 0.0;
                    for (wi, &word) in reach.reach_words(i).iter().enumerate() {
                        let mut bits = word;
                        while bits != 0 {
                            let b = bits.trailing_zeros() as usize;
                            detoured += w[wi * 64 + b];
                            bits &= bits - 1;
                        }
                    }
                    detoured / total
                })
                .collect()
        }
    }
}

/// Runs one leak scenario over `g` (compiling a fresh snapshot; sweeps
/// should reuse a [`LeakSim`] instead).
///
/// Panics if `victim == leaker` (a meaningless configuration callers are
/// expected to avoid when sampling misconfigured ASes).
pub fn simulate_leak(g: &AsGraph, scenario: &LeakScenario) -> LeakOutcome {
    let snap = TopologySnapshot::compile(g);
    LeakSim::new(&snap).run(scenario)
}

/// Simulates a **more-specific (sub-prefix) hijack**: the leaker announces
/// a longer prefix inside the victim's space, so longest-prefix-match —
/// not BGP preference — decides, and *every* AS holding the leaked route
/// is detoured regardless of its legitimate route.
///
/// §8 deliberately studies same-length leaks ("the leaked routes have the
/// same prefix length as the legitimate routes"); this extension
/// quantifies the nastier variant. Peer locking is the only defence the
/// model offers: under [`LockingSemantics::Corrected`], deployers drop the
/// sub-prefix entirely, so it cannot spread through them.
pub fn simulate_subprefix_hijack(g: &AsGraph, scenario: &LeakScenario) -> LeakOutcome {
    let snap = TopologySnapshot::compile(g);
    LeakSim::new(&snap).run_subprefix(scenario)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flatnet_asgraph::{AsGraphBuilder, AsId, Relationship};

    #[test]
    fn subprefix_hijack_detours_everything_reachable() {
        // Like `topology()`, but 40 also buys transit from T (1): its
        // 1-hop peer route to the victim wins the same-length competition,
        // yet the sub-prefix arriving via its provider still captures it.
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(1), AsId(30), Relationship::P2c);
        b.add_link(AsId(1), AsId(20), Relationship::P2c);
        b.add_link(AsId(1), AsId(40), Relationship::P2c);
        b.add_link(AsId(10), AsId(1), Relationship::P2p);
        b.add_link(AsId(10), AsId(40), Relationship::P2p);
        let g = b.build();
        let same = simulate_leak(&g, &LeakScenario::simple(node(&g, 10), node(&g, 30)));
        assert_eq!(same.state(node(&g, 40)), DetourState::Legit);
        let out = simulate_subprefix_hijack(&g, &LeakScenario::simple(node(&g, 10), node(&g, 30)));
        assert_eq!(out.state(node(&g, 1)), DetourState::Detoured);
        assert_eq!(out.state(node(&g, 20)), DetourState::Detoured);
        assert_eq!(out.state(node(&g, 40)), DetourState::Detoured);
        assert_eq!(out.state(node(&g, 10)), DetourState::Legit);
        assert!(out.detoured_count() > same.detoured_count());
    }

    #[test]
    fn global_locking_contains_subprefix_hijacks() {
        let g = topology();
        let victim = node(&g, 10);
        let scenario = LeakScenario {
            victim,
            leaker: node(&g, 30),
            victim_export: None,
            locking: g.neighbors(victim).map(|(n, _)| n).collect(),
            semantics: LockingSemantics::Corrected,
        };
        let out = simulate_subprefix_hijack(&g, &scenario);
        // The locking transit drops the sub-prefix: only the leaker
        // itself is detoured.
        assert_eq!(out.detoured_count(), 1);
        assert_eq!(out.state(node(&g, 1)), DetourState::Legit);
        assert_eq!(out.state(node(&g, 40)), DetourState::Legit);
    }

    fn node(g: &AsGraph, asn: u32) -> NodeId {
        g.index_of(AsId(asn)).unwrap()
    }

    /// Victim 10 peers with transit T (1) and with edge ASes 40, 50.
    /// Leaker 30 is a customer of T. T also serves customer 20.
    fn topology() -> AsGraph {
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(1), AsId(30), Relationship::P2c);
        b.add_link(AsId(1), AsId(20), Relationship::P2c);
        b.add_link(AsId(10), AsId(1), Relationship::P2p);
        b.add_link(AsId(10), AsId(40), Relationship::P2p);
        b.add_link(AsId(10), AsId(50), Relationship::P2p);
        b.build()
    }

    #[test]
    fn customer_preference_attracts_transit() {
        let g = topology();
        let out = simulate_leak(&g, &LeakScenario::simple(node(&g, 10), node(&g, 30)));
        // T prefers the leaked *customer* route from 30 over the peer route
        // from the victim.
        assert_eq!(out.state(node(&g, 1)), DetourState::Detoured);
        // ...and passes the leaked route to its customer 20.
        assert_eq!(out.state(node(&g, 20)), DetourState::Detoured);
        // Direct peers of the victim hold a 1-hop peer route; the leaked
        // copy reaches them as a longer peer route via T? No — T exports a
        // customer-learned route to peers, length 2 > 1. Legit wins.
        assert_eq!(out.state(node(&g, 40)), DetourState::Legit);
        assert_eq!(out.state(node(&g, 10)), DetourState::Legit);
        assert_eq!(out.state(node(&g, 30)), DetourState::Detoured);
        assert_eq!(out.detoured_count(), 3);
        assert!((out.fraction_detoured() - 3.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn leaksim_fraction_matches_full_outcome() {
        let g = topology();
        let snap = TopologySnapshot::compile(&g);
        let mut sim = LeakSim::new(&snap);
        let scenario = LeakScenario::simple(node(&g, 10), node(&g, 30));
        let out = sim.run(&scenario);
        assert_eq!(sim.fraction(&scenario, None), out.fraction_detoured());
        let mut w = vec![1.0; g.len()];
        w[node(&g, 1).idx()] = 5.0;
        assert_eq!(sim.fraction(&scenario, Some(&w)), out.weighted_fraction_detoured(&w));
        // Reusing the simulator for a sub-prefix run agrees too.
        let sub = sim.run_subprefix(&scenario);
        assert_eq!(sim.subprefix_fraction(&scenario, None), sub.fraction_detoured());
        assert_eq!(
            sim.subprefix_fraction(&scenario, Some(&w)),
            sub.weighted_fraction_detoured(&w)
        );
    }

    #[test]
    fn peer_locking_at_transit_stops_the_leak() {
        let g = topology();
        let scenario = LeakScenario {
            victim: node(&g, 10),
            leaker: node(&g, 30),
            victim_export: None,
            locking: vec![node(&g, 1)],
            semantics: LockingSemantics::Corrected,
        };
        let out = simulate_leak(&g, &scenario);
        // T discards the leaked route (peer lock) and keeps the direct
        // peer route from the victim.
        assert_eq!(out.state(node(&g, 1)), DetourState::Legit);
        assert_eq!(out.state(node(&g, 20)), DetourState::Legit);
        // Only the leaker itself is detoured.
        assert_eq!(out.detoured_count(), 1);
    }

    #[test]
    fn pre_erratum_semantics_let_leaks_through_locking_ases() {
        // The leak reaches locking AS 1 via intermediary 2, which is 1's
        // *customer*. Under the original (pre-erratum) semantics, AS 1
        // accepts that indirect copy, and local preference makes the
        // customer-learned leak beat the victim's direct peer route — so 1
        // and its customer 20 are detoured. Under the corrected semantics
        // the indirect copy is discarded and both stay safe.
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(2), AsId(30), Relationship::P2c);
        b.add_link(AsId(1), AsId(2), Relationship::P2c);
        b.add_link(AsId(1), AsId(20), Relationship::P2c);
        b.add_link(AsId(10), AsId(1), Relationship::P2p);
        let g = b.build();
        let mut scenario = LeakScenario {
            victim: node(&g, 10),
            leaker: node(&g, 30),
            victim_export: None,
            locking: vec![node(&g, 1)],
            semantics: LockingSemantics::PreErratum,
        };
        let out = simulate_leak(&g, &scenario);
        assert_eq!(out.state(node(&g, 1)), DetourState::Detoured);
        assert_eq!(out.state(node(&g, 2)), DetourState::Detoured);
        // (AS 20 compares the two independently propagated routes — the
        // victim's provider route wins on length there, the same per-AS
        // comparison the paper's simulator makes.)
        // Corrected semantics: the locking AS is immune again.
        scenario.semantics = LockingSemantics::Corrected;
        let out = simulate_leak(&g, &scenario);
        assert_eq!(out.state(node(&g, 1)), DetourState::Legit);
        assert_eq!(out.state(node(&g, 20)), DetourState::Legit);
    }

    #[test]
    fn pre_erratum_still_filters_direct_leaks() {
        // Leaker adjacent to the locking AS: both semantics filter it.
        let g = topology();
        for semantics in [LockingSemantics::PreErratum, LockingSemantics::Corrected] {
            let scenario = LeakScenario {
                victim: node(&g, 10),
                leaker: node(&g, 30),
                victim_export: None,
                locking: vec![node(&g, 1)],
                semantics,
            };
            let out = simulate_leak(&g, &scenario);
            assert_eq!(out.state(node(&g, 1)), DetourState::Legit, "{semantics:?}");
            assert_eq!(out.state(node(&g, 20)), DetourState::Legit, "{semantics:?}");
        }
    }

    #[test]
    fn leak_does_not_propagate_through_locking_as() {
        // Erratum semantics: a leaked route reaching a locking AS via some
        // other AS is still discarded.
        // Chain: leaker 30 -> its provider 2 -> 2 peers with locking T (1),
        // T has customer 20; victim 10 peers with T only.
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(2), AsId(30), Relationship::P2c);
        b.add_link(AsId(2), AsId(1), Relationship::P2p);
        b.add_link(AsId(1), AsId(20), Relationship::P2c);
        b.add_link(AsId(10), AsId(1), Relationship::P2p);
        let g = b.build();
        let scenario = LeakScenario {
            victim: node(&g, 10),
            leaker: node(&g, 30),
            victim_export: None,
            locking: vec![node(&g, 1)],
            semantics: LockingSemantics::Corrected,
        };
        let out = simulate_leak(&g, &scenario);
        // Without locking, T would hear the leak from peer 2 (customer
        // route at 2, exportable to peers) and pass it to customer 20
        // tying/beating the legit peer route. With locking, 20 is safe.
        assert_eq!(out.state(node(&g, 1)), DetourState::Legit);
        assert_eq!(out.state(node(&g, 20)), DetourState::Legit);
        // 2 itself prefers its customer's leaked route.
        assert_eq!(out.state(node(&g, 2)), DetourState::Detoured);
    }

    #[test]
    fn announce_to_transit_only_reduces_resilience() {
        let g = topology();
        // Victim announces only to T — its direct peers 40/50 now depend on
        // T's route and tie-break worst-case toward the leak? 40 hears
        // nothing (T exports peer-learned route only to customers), so 40
        // has no route at all; it is not detoured but also not served.
        let scenario = LeakScenario {
            victim: node(&g, 10),
            leaker: node(&g, 30),
            victim_export: Some(vec![node(&g, 1)]),
            locking: vec![],
            semantics: LockingSemantics::Corrected,
        };
        let out = simulate_leak(&g, &scenario);
        assert_eq!(out.state(node(&g, 40)), DetourState::NoRoute);
        // T still prefers the leaked customer route.
        assert_eq!(out.state(node(&g, 1)), DetourState::Detoured);
        assert_eq!(out.state(node(&g, 20)), DetourState::Detoured);
    }

    #[test]
    fn scenario_buffers_are_refilled_not_leaked_across_runs() {
        // Run a locking scenario, then a plain one on the same LeakSim:
        // the second run must behave exactly like a fresh simulator.
        let g = topology();
        let snap = TopologySnapshot::compile(&g);
        let mut sim = LeakSim::new(&snap);
        let locked = LeakScenario {
            victim: node(&g, 10),
            leaker: node(&g, 30),
            victim_export: Some(vec![node(&g, 1)]),
            locking: vec![node(&g, 1)],
            semantics: LockingSemantics::Corrected,
        };
        let _ = sim.run(&locked);
        let plain = LeakScenario::simple(node(&g, 10), node(&g, 30));
        let reused = sim.run(&plain);
        let fresh = simulate_leak(&g, &plain);
        assert_eq!(reused.states(), fresh.states());
    }

    #[test]
    fn equal_routes_detour_worst_case() {
        // t has two providers: one leads to victim, one to leaker, equal
        // class and length.
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(2), AsId(10), Relationship::P2c); // provider 2 -> victim
        b.add_link(AsId(3), AsId(30), Relationship::P2c); // provider 3 -> leaker
        b.add_link(AsId(2), AsId(5), Relationship::P2c);
        b.add_link(AsId(3), AsId(5), Relationship::P2c);
        let g = b.build();
        let out = simulate_leak(&g, &LeakScenario::simple(node(&g, 10), node(&g, 30)));
        assert_eq!(out.state(node(&g, 5)), DetourState::Detoured);
    }

    #[test]
    fn weighted_fraction_uses_population_mass() {
        let g = topology();
        let out = simulate_leak(&g, &LeakScenario::simple(node(&g, 10), node(&g, 30)));
        // Put all weight on a legit AS: weighted fraction 0.
        let mut w = vec![0.0; g.len()];
        w[node(&g, 40).idx()] = 100.0;
        assert_eq!(out.weighted_fraction_detoured(&w), 0.0);
        // All weight on the detoured transit: fraction 1.
        let mut w = vec![0.0; g.len()];
        w[node(&g, 1).idx()] = 7.0;
        assert_eq!(out.weighted_fraction_detoured(&w), 1.0);
        // Zero weights: defined as 0.
        let w = vec![0.0; g.len()];
        assert_eq!(out.weighted_fraction_detoured(&w), 0.0);
    }

    #[test]
    #[should_panic(expected = "victim cannot leak")]
    fn victim_equals_leaker_panics() {
        let g = topology();
        simulate_leak(&g, &LeakScenario::simple(node(&g, 10), node(&g, 10)));
    }

    #[test]
    fn batch_subprefix_matches_per_leaker_sim() {
        let g = topology();
        let snap = TopologySnapshot::compile(&g);
        let victim = node(&g, 10);
        let leakers: Vec<NodeId> = g.nodes().filter(|&t| t != victim).collect();
        let mut w = vec![1.0; g.len()];
        w[node(&g, 1).idx()] = 5.0;
        w[node(&g, 20).idx()] = 0.25;
        for semantics in [LockingSemantics::Corrected, LockingSemantics::PreErratum] {
            for locking in [vec![], vec![node(&g, 1)], vec![node(&g, 1), node(&g, 40)]] {
                for weights in [None, Some(w.as_slice())] {
                    let batch = subprefix_detour_fractions(
                        &snap, victim, &leakers, &locking, semantics, weights, 1,
                    );
                    let mut sim = LeakSim::new(&snap);
                    for (i, &leaker) in leakers.iter().enumerate() {
                        let scenario = LeakScenario {
                            victim,
                            leaker,
                            victim_export: None,
                            locking: locking.clone(),
                            semantics,
                        };
                        let want = sim.subprefix_fraction(&scenario, weights);
                        assert!(
                            (batch[i] - want).abs() < 1e-12,
                            "leaker {leaker}, {semantics:?}, locking {locking:?}, \
                             weighted={}: batch {} != scalar {want}",
                            weights.is_some(),
                            batch[i],
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batch_subprefix_empty_inputs() {
        let g = topology();
        let snap = TopologySnapshot::compile(&g);
        let out = subprefix_detour_fractions(
            &snap,
            node(&g, 10),
            &[],
            &[],
            LockingSemantics::Corrected,
            None,
            1,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn victim_never_accepts_the_leak() {
        // Victim's provider hears the leak from another customer; victim
        // must stay Legit regardless.
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(1), AsId(10), Relationship::P2c);
        b.add_link(AsId(1), AsId(30), Relationship::P2c);
        let g = b.build();
        let out = simulate_leak(&g, &LeakScenario::simple(node(&g, 10), node(&g, 30)));
        assert_eq!(out.state(node(&g, 10)), DetourState::Legit);
        assert_eq!(out.victim(), node(&g, 10));
        assert_eq!(out.leaker(), node(&g, 30));
    }
}
