//! Three-phase valley-free route propagation keeping all tied-best routes.
//!
//! For an origin `o`, the set of best routes every other AS holds toward `o`
//! is fully characterized by three per-node shortest distances:
//!
//! 1. **customer phase** — `dist_c[u]`: shortest route `u` learned from a
//!    *customer* (or `u == o`). An AS exports such routes to everyone, so
//!    these spread upward along c2p edges like a plain BFS from `o`.
//! 2. **peer phase** — `dist_p[u]`: shortest route learned from a *peer*.
//!    Peers only export customer/origin routes, so
//!    `dist_p[u] = min over peers v of dist_c[v] + 1` — one relaxation pass.
//! 3. **provider phase** — `dist_d[u]`: shortest route learned from a
//!    *provider*. Providers export their *selected best* (customer, else
//!    peer, else provider class) to customers, so these distances chain and
//!    are computed with a shortest-path pass over p2c-down edges.
//!
//! Selection applies local preference first (customer > peer > provider)
//! and path length second; every neighbor achieving the selected class and
//! length is a tied-best next hop.
//!
//! The same machinery supports the paper's constrained scenarios through
//! [`PropagationConfig`]: node exclusion (reachability subgraphs), origin
//! export restriction, and per-node import policies (peer locking).
//!
//! [`propagate`] is a convenience shim over [`crate::engine`]: it compiles a
//! [`crate::engine::TopologySnapshot`] and runs one origin through a fresh
//! [`crate::engine::Workspace`]. Sweeps should build the snapshot once and
//! use [`crate::engine::Simulation`] instead. The original per-call
//! implementation survives as [`propagate_legacy`], the reference the
//! engine is differentially tested against.

use flatnet_asgraph::{AsGraph, NodeId};
use flatnet_obs::Counter;
use std::collections::BinaryHeap;
use std::collections::VecDeque;
use std::sync::OnceLock;

/// Pre-resolved handles into the global metric registry; propagation is
/// the innermost loop of every sweep, so tallies are accumulated in
/// locals and flushed with one atomic add per counter per call.
pub(crate) struct PropagateMetrics {
    pub(crate) runs: Counter,
    pub(crate) routes_customer: Counter,
    pub(crate) routes_peer: Counter,
    pub(crate) routes_provider: Counter,
    pub(crate) export_checks: Counter,
    pub(crate) dijkstra_pops: Counter,
    /// Blocks run through the bit-parallel kernel (`crate::lanes`).
    pub(crate) kernel_blocks: Counter,
    /// Frontier rounds across the kernel's BFS phases; deterministic for
    /// a given (topology, origins, policy) regardless of thread count.
    pub(crate) kernel_rounds: Counter,
    /// Wall time of one single-origin engine run (`run_into`), µs — the
    /// `propagate` stage cost a cache-missing serve query pays.
    pub(crate) run_us: std::sync::Arc<flatnet_obs::Histogram>,
    /// Wall time of one bit-parallel kernel block (`crate::lanes`), µs.
    pub(crate) kernel_block_us: std::sync::Arc<flatnet_obs::Histogram>,
}

pub(crate) fn metrics() -> &'static PropagateMetrics {
    static METRICS: OnceLock<PropagateMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = flatnet_obs::global();
        PropagateMetrics {
            runs: reg.counter("propagate.runs"),
            routes_customer: reg.counter("propagate.routes_customer"),
            routes_peer: reg.counter("propagate.routes_peer"),
            routes_provider: reg.counter("propagate.routes_provider"),
            export_checks: reg.counter("propagate.export_checks"),
            dijkstra_pops: reg.counter("propagate.dijkstra_pops"),
            kernel_blocks: reg.counter("propagate.kernel_blocks"),
            kernel_rounds: reg.counter("propagate.kernel_rounds"),
            run_us: reg.histogram("propagate.run_us"),
            kernel_block_us: reg.histogram("propagate.kernel_block_us"),
        }
    })
}

/// Sentinel distance for "no route of this class".
pub const UNREACHED: u32 = u32::MAX;

/// Which relationship class the selected best route was learned over.
///
/// Order encodes local preference: lower is preferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RouteClass {
    /// Learned from a customer (or the AS's own origin route).
    Customer,
    /// Learned from a settlement-free peer.
    Peer,
    /// Learned from a transit provider.
    Provider,
}

impl RouteClass {
    /// Report label.
    pub fn name(self) -> &'static str {
        match self {
            RouteClass::Customer => "customer",
            RouteClass::Peer => "peer",
            RouteClass::Provider => "provider",
        }
    }
}

/// Per-node route import behaviour, used to model §8's peer locking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ImportPolicy {
    /// Accept routes normally.
    #[default]
    Normal,
    /// Accept the prefix only when received directly from the origin —
    /// what a neighbor deploying *peer locking* for the origin's prefixes
    /// does. Leaked copies arriving over any other adjacency are discarded,
    /// so leaks can never propagate *through* such a node (the published
    /// erratum's corrected semantics).
    OnlyDirectFromOrigin,
    /// Reject the prefix only when received *directly* from the origin,
    /// accept it from anyone else. This models the paper's **original
    /// (pre-erratum) simulation flaw**: peer-locking deployers filtered
    /// leaks announced straight to them but let copies that detoured
    /// through non-deploying ASes back in.
    RejectDirectFromOrigin,
    /// Never accept the prefix (used for the leak origin's propagation as
    /// seen by peer-locking deployers under the corrected semantics).
    Never,
}

/// A borrowed view of the policy inputs of one propagation run; the single
/// place the exclusion / origin-export / import rules are interpreted, so
/// the engine, the legacy implementation, and `next_hops` cannot drift.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PolicyView<'a> {
    pub(crate) excluded: Option<&'a [bool]>,
    pub(crate) origin_export: Option<&'a [bool]>,
    pub(crate) import: Option<&'a [ImportPolicy]>,
}

impl PolicyView<'_> {
    #[inline]
    pub(crate) fn is_excluded(&self, n: NodeId) -> bool {
        self.excluded.map(|m| m[n.idx()]).unwrap_or(false)
    }

    #[inline]
    fn import_of(&self, n: NodeId) -> ImportPolicy {
        self.import.map(|m| m[n.idx()]).unwrap_or(ImportPolicy::Normal)
    }

    /// Whether AS `u` may import the origin's prefix from neighbor `v`.
    #[inline]
    pub(crate) fn import_ok(&self, origin: NodeId, u: NodeId, v: NodeId) -> bool {
        if self.is_excluded(u) || self.is_excluded(v) {
            return false;
        }
        match self.import_of(u) {
            ImportPolicy::Normal => {}
            ImportPolicy::OnlyDirectFromOrigin => {
                if v != origin {
                    return false;
                }
            }
            ImportPolicy::RejectDirectFromOrigin => {
                if v == origin {
                    return false;
                }
            }
            ImportPolicy::Never => return false,
        }
        if v == origin {
            if let Some(mask) = self.origin_export {
                return mask[u.idx()];
            }
        }
        true
    }
}

/// Owned per-run propagation knobs: node exclusion, origin export
/// restriction, per-node import policies, and tie handling.
///
/// The config owns its masks, so it can be stored in builders and worker
/// contexts without lifetime plumbing, and its buffers can be refilled in
/// place between runs of a sweep
/// (see [`PropagationConfig::excluded_mask_mut`]).
#[derive(Debug, Clone)]
pub struct PropagationConfig {
    excluded: Option<Vec<bool>>,
    origin_export: Option<Vec<bool>>,
    import: Option<Vec<ImportPolicy>>,
    keep_ties: bool,
}

impl Default for PropagationConfig {
    /// Full graph, no restrictions, all tied-best routes kept.
    fn default() -> Self {
        PropagationConfig { excluded: None, origin_export: None, import: None, keep_ties: true }
    }
}

impl PropagationConfig {
    /// Config with no restrictions (same as `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the excluded-node mask (`true` = removed from the topology).
    pub fn with_excluded(mut self, mask: Vec<bool>) -> Self {
        self.excluded = Some(mask);
        self
    }

    /// Sets the origin-export mask: the origin announces only to neighbors
    /// flagged `true`.
    pub fn with_origin_export(mut self, mask: Vec<bool>) -> Self {
        self.origin_export = Some(mask);
        self
    }

    /// Sets per-node import policies (peer locking).
    pub fn with_import(mut self, policies: Vec<ImportPolicy>) -> Self {
        self.import = Some(policies);
        self
    }

    /// Whether [`RoutingOutcome::next_hops`] reports every tied-best next
    /// hop (`true`, the paper's model and the default) or deterministically
    /// breaks ties by lowest node index (`false`).
    pub fn with_keep_ties(mut self, keep: bool) -> Self {
        self.keep_ties = keep;
        self
    }

    /// Whether tied-best routes are all kept (see [`Self::with_keep_ties`]).
    pub fn keep_ties(&self) -> bool {
        self.keep_ties
    }

    /// Mutable access to the exclusion mask, sized for an `n`-node graph.
    ///
    /// Allocates a cleared mask on first use and reuses it afterwards, so
    /// a sweep that re-fills the mask per origin does no steady-state
    /// allocation. The caller is responsible for clearing stale entries
    /// (`mask.fill(false)`) before writing the next origin's exclusions.
    pub fn excluded_mask_mut(&mut self, n: usize) -> &mut [bool] {
        let mask = self.excluded.get_or_insert_with(|| vec![false; n]);
        if mask.len() != n {
            mask.clear();
            mask.resize(n, false);
        }
        mask
    }

    /// The borrowed policy view shared by both propagation implementations.
    pub(crate) fn view(&self) -> PolicyView<'_> {
        PolicyView {
            excluded: self.excluded.as_deref(),
            origin_export: self.origin_export.as_deref(),
            import: self.import.as_deref(),
        }
    }
}

/// The result of propagating one origin's announcement.
///
/// Holds, for every node, the shortest distance per route class plus a
/// word-packed reachability bitset; selection and tied-best next hops are
/// derived views.
#[derive(Debug, Clone)]
pub struct RoutingOutcome {
    origin: NodeId,
    dist_c: Vec<u32>,
    dist_p: Vec<u32>,
    dist_d: Vec<u32>,
    /// Bit `i` set iff node `i` received the announcement (origin included).
    reach: Vec<u64>,
    /// Popcount of `reach`, cached at propagation time.
    reached: u32,
}

impl RoutingOutcome {
    /// Assembles an outcome from engine-computed parts. The caller
    /// guarantees `reach`/`reached` are consistent with the distances.
    pub(crate) fn from_parts(
        origin: NodeId,
        dist_c: Vec<u32>,
        dist_p: Vec<u32>,
        dist_d: Vec<u32>,
        reach: Vec<u64>,
        reached: u32,
    ) -> Self {
        RoutingOutcome { origin, dist_c, dist_p, dist_d, reach, reached }
    }

    /// The announcing AS.
    pub fn origin(&self) -> NodeId {
        self.origin
    }

    /// Number of nodes in the underlying graph.
    pub fn len(&self) -> usize {
        self.dist_c.len()
    }

    /// Whether the outcome covers an empty graph.
    pub fn is_empty(&self) -> bool {
        self.dist_c.is_empty()
    }

    /// The selected best route of `n`: class and AS-path length (number of
    /// inter-AS hops to the origin). `None` if `n` received no route.
    /// The origin itself selects `(Customer, 0)`.
    #[inline]
    pub fn selection(&self, n: NodeId) -> Option<(RouteClass, u32)> {
        let i = n.idx();
        if self.dist_c[i] != UNREACHED {
            Some((RouteClass::Customer, self.dist_c[i]))
        } else if self.dist_p[i] != UNREACHED {
            Some((RouteClass::Peer, self.dist_p[i]))
        } else if self.dist_d[i] != UNREACHED {
            Some((RouteClass::Provider, self.dist_d[i]))
        } else {
            None
        }
    }

    /// Whether `n` received the announcement.
    #[inline]
    pub fn reachable(&self, n: NodeId) -> bool {
        let i = n.idx();
        (self.reach[i >> 6] >> (i & 63)) & 1 == 1
    }

    /// Number of ASes that received the announcement, **excluding** the
    /// origin itself (an AS does not "reach" itself; the paper's maximum
    /// possible reachability is `|V| - 1` from the origin's perspective,
    /// attained by the Tier-1 ISPs over the full graph).
    ///
    /// O(1): backed by the popcount cached when the bitset was filled.
    pub fn reachable_count(&self) -> usize {
        (self.reached as usize).saturating_sub(1) // origin always has dist_c == 0
    }

    /// The word-packed reachability bitset (bit = node index, origin bit
    /// set). `reach_words().len() == len().div_ceil(64)`.
    pub fn reach_words(&self) -> &[u64] {
        &self.reach
    }

    /// All reachable nodes (the paper's `reach(o, G)` set), origin excluded.
    ///
    /// Allocates the result; hot loops should iterate [`Self::reach_words`]
    /// or use [`Self::reachable_count`] instead.
    pub fn reach_set(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.reachable_count());
        for (wi, &word) in self.reach.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros();
                let n = NodeId((wi as u32) * 64 + bit);
                if n != self.origin {
                    out.push(n);
                }
                w &= w - 1;
            }
        }
        out
    }

    /// The tied-best next hops of `n` toward the origin, under the same
    /// graph and config the outcome was computed with. Empty for the
    /// origin and for unreachable nodes. Sorted by node index. With
    /// `keep_ties(false)` only the lowest-index tied hop is returned.
    pub fn next_hops(&self, g: &AsGraph, cfg: &PropagationConfig, n: NodeId) -> Vec<NodeId> {
        let mut out = self.next_hops_view(g, &cfg.view(), n);
        if !cfg.keep_ties {
            out.truncate(1);
        }
        out
    }

    fn next_hops_view(&self, g: &AsGraph, pol: &PolicyView<'_>, n: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        if n == self.origin {
            return out;
        }
        let Some((class, len)) = self.selection(n) else {
            return out;
        };
        match class {
            RouteClass::Customer => {
                for &c in g.customers(n) {
                    if pol.import_ok(self.origin, n, c)
                        && self.dist_c[c.idx()] != UNREACHED
                        && self.dist_c[c.idx()] + 1 == len
                    {
                        out.push(c);
                    }
                }
            }
            RouteClass::Peer => {
                for &v in g.peers(n) {
                    if pol.import_ok(self.origin, n, v)
                        && self.dist_c[v.idx()] != UNREACHED
                        && self.dist_c[v.idx()] + 1 == len
                    {
                        out.push(v);
                    }
                }
            }
            RouteClass::Provider => {
                for &w in g.providers(n) {
                    if pol.import_ok(self.origin, n, w) {
                        if let Some((_, wlen)) = self.selection(w) {
                            if wlen + 1 == len {
                                out.push(w);
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Propagates `origin`'s announcement over `g` under `cfg`.
///
/// Convenience shim over the batched engine: compiles a
/// [`crate::engine::TopologySnapshot`] and runs the origin through a fresh
/// [`crate::engine::Workspace`]. Semantics, determinism, and observability
/// counters are identical to [`propagate_legacy`]; for sweeps over many
/// origins, compile the snapshot once and use
/// [`crate::engine::Simulation`] instead.
pub fn propagate(g: &AsGraph, origin: NodeId, cfg: &PropagationConfig) -> RoutingOutcome {
    let snap = crate::engine::TopologySnapshot::compile(g);
    let mut ws = crate::engine::Workspace::for_snapshot(&snap);
    crate::engine::run_into(&snap, origin, &cfg.view(), &mut ws);
    ws.to_outcome()
}

/// The original, self-contained three-phase implementation.
///
/// Runs in O(V + E log V) (the log from the provider-phase binary heap)
/// and is deterministic: adjacency lists are sorted and ties never depend
/// on iteration order. Kept verbatim as the reference the engine is
/// differentially tested against (`tests/engine_equiv.rs`); production
/// paths go through [`propagate`] / [`crate::engine::Simulation`].
pub fn propagate_legacy(g: &AsGraph, origin: NodeId, cfg: &PropagationConfig) -> RoutingOutcome {
    let n = g.len();
    let pol = cfg.view();
    let obs = metrics();
    obs.runs.inc();
    let mut export_checks = 0u64;
    let mut dijkstra_pops = 0u64;
    let mut out = RoutingOutcome {
        origin,
        dist_c: vec![UNREACHED; n],
        dist_p: vec![UNREACHED; n],
        dist_d: vec![UNREACHED; n],
        reach: vec![0u64; n.div_ceil(64)],
        reached: 0,
    };
    if n == 0 || pol.is_excluded(origin) {
        return out;
    }

    // Phase 1: customer routes spread up provider edges (plain BFS, all
    // edges weight 1). The origin's own route behaves like a customer route.
    out.dist_c[origin.idx()] = 0;
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    queue.push_back(origin);
    while let Some(u) = queue.pop_front() {
        let du = out.dist_c[u.idx()];
        for &p in g.providers(u) {
            export_checks += 1;
            if out.dist_c[p.idx()] == UNREACHED && pol.import_ok(origin, p, u) {
                out.dist_c[p.idx()] = du + 1;
                queue.push_back(p);
            }
        }
    }

    // Phase 2: peers export customer/origin routes; a single relaxation.
    for i in 0..n as u32 {
        let u = NodeId(i);
        if pol.is_excluded(u) || u == origin {
            continue;
        }
        let mut best = UNREACHED;
        for &v in g.peers(u) {
            export_checks += 1;
            if out.dist_c[v.idx()] != UNREACHED && pol.import_ok(origin, u, v) {
                best = best.min(out.dist_c[v.idx()] + 1);
            }
        }
        out.dist_p[u.idx()] = best;
    }

    // Phase 3: providers export their selected best to customers; distances
    // chain downward, so run Dijkstra seeded from every AS that already
    // holds a customer or peer route.
    let mut heap: BinaryHeap<std::cmp::Reverse<(u32, u32)>> = BinaryHeap::new();
    let sel_static = |o: &RoutingOutcome, w: NodeId| -> u32 {
        if o.dist_c[w.idx()] != UNREACHED {
            o.dist_c[w.idx()]
        } else {
            o.dist_p[w.idx()]
        }
    };
    for i in 0..n as u32 {
        let w = NodeId(i);
        if out.dist_c[w.idx()] != UNREACHED || out.dist_p[w.idx()] != UNREACHED {
            let s = sel_static(&out, w);
            for &u in g.customers(w) {
                export_checks += 1;
                // A node with a customer/peer route already prefers it over
                // any provider route; still record dist_d for completeness
                // of tie information at equal class only — the selection
                // function ignores dist_d when a better class exists.
                if pol.import_ok(origin, u, w) && u != origin && s + 1 < out.dist_d[u.idx()] {
                    out.dist_d[u.idx()] = s + 1;
                    heap.push(std::cmp::Reverse((s + 1, u.0)));
                }
            }
        }
    }
    while let Some(std::cmp::Reverse((d, ui))) = heap.pop() {
        dijkstra_pops += 1;
        let u = NodeId(ui);
        if d != out.dist_d[u.idx()] {
            continue; // stale entry
        }
        // `u` only *exports* its provider route if that is its selection.
        if out.dist_c[u.idx()] != UNREACHED || out.dist_p[u.idx()] != UNREACHED {
            continue;
        }
        for &x in g.customers(u) {
            export_checks += 1;
            if x == origin {
                continue;
            }
            if pol.import_ok(origin, x, u) && d + 1 < out.dist_d[x.idx()] {
                out.dist_d[x.idx()] = d + 1;
                heap.push(std::cmp::Reverse((d + 1, x.0)));
            }
        }
    }

    // A node that selects a customer or peer route never uses its provider
    // route; clear dist_d there so `selection` and `next_hops` agree and
    // downstream consumers (DAG, reliance) see only selected routes.
    let (mut sel_c, mut sel_p, mut sel_d) = (0u64, 0u64, 0u64);
    for i in 0..n {
        if out.dist_c[i] != UNREACHED {
            sel_c += 1;
            out.dist_d[i] = UNREACHED;
        } else if out.dist_p[i] != UNREACHED {
            sel_p += 1;
            out.dist_d[i] = UNREACHED;
        } else if out.dist_d[i] == UNREACHED {
            continue;
        } else {
            sel_d += 1;
        }
        out.reach[i >> 6] |= 1u64 << (i & 63);
        out.reached += 1;
    }
    obs.routes_customer.add(sel_c);
    obs.routes_peer.add(sel_p);
    obs.routes_provider.add(sel_d);
    obs.export_checks.add(export_checks);
    obs.dijkstra_pops.add(dijkstra_pops);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flatnet_asgraph::{AsGraphBuilder, AsId, Relationship};

    fn node(g: &AsGraph, asn: u32) -> NodeId {
        g.index_of(AsId(asn)).unwrap()
    }

    /// Figure-1-style topology:
    ///
    /// * AS 1: the cloud's transit provider (also a Tier-1).
    /// * AS 2: a Tier-1 the cloud peers with; AS 20 is its customer.
    /// * AS 3: a Tier-2 the cloud peers with; AS 30 is its customer.
    /// * AS 40, 50: user ISPs the cloud peers with.
    /// * AS 60: user ISP reachable only through provider AS 1.
    /// * AS 10: the cloud.
    fn fig1() -> AsGraph {
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(1), AsId(10), Relationship::P2c);
        b.add_link(AsId(1), AsId(60), Relationship::P2c);
        b.add_link(AsId(1), AsId(2), Relationship::P2p);
        b.add_link(AsId(2), AsId(3), Relationship::P2c);
        b.add_link(AsId(2), AsId(20), Relationship::P2c);
        b.add_link(AsId(3), AsId(30), Relationship::P2c);
        b.add_link(AsId(10), AsId(2), Relationship::P2p);
        b.add_link(AsId(10), AsId(3), Relationship::P2p);
        b.add_link(AsId(10), AsId(40), Relationship::P2p);
        b.add_link(AsId(10), AsId(50), Relationship::P2p);
        b.build()
    }

    #[test]
    fn full_graph_reaches_everyone() {
        let g = fig1();
        let cloud = node(&g, 10);
        let out = propagate(&g, cloud, &PropagationConfig::default());
        assert_eq!(out.reachable_count(), g.len() - 1);
        // AS 60 is reached through the provider: 10 -> 1 -> 60, length 2.
        let n60 = node(&g, 60);
        assert_eq!(out.selection(n60), Some((RouteClass::Provider, 2)));
        assert_eq!(out.origin(), cloud);
    }

    #[test]
    fn provider_free_reachability_matches_hand_count() {
        let g = fig1();
        let cloud = node(&g, 10);
        let mut excl = vec![false; g.len()];
        excl[node(&g, 1).idx()] = true; // remove the transit provider
        let cfg = PropagationConfig::default().with_excluded(excl);
        let out = propagate(&g, cloud, &cfg);
        // Reaches peers 2, 3, 40, 50 and their customers 20, 30 — not 60.
        assert_eq!(out.reachable_count(), 6);
        assert!(!out.reachable(node(&g, 60)));
        assert!(!out.reachable(node(&g, 1)));
        assert!(out.reachable(node(&g, 20)));
    }

    #[test]
    fn tier1_free_removes_clique_customers_too() {
        let g = fig1();
        let cloud = node(&g, 10);
        let mut excl = vec![false; g.len()];
        for asn in [1, 2] {
            excl[node(&g, asn).idx()] = true; // providers + Tier-1s
        }
        let cfg = PropagationConfig::default().with_excluded(excl);
        let out = propagate(&g, cloud, &cfg);
        // Left: peer 3 (+30), peers 40, 50. AS 20 lost with AS 2.
        assert_eq!(out.reachable_count(), 4);
        assert!(!out.reachable(node(&g, 20)));
    }

    #[test]
    fn hierarchy_free_keeps_only_direct_peer_edges() {
        let g = fig1();
        let cloud = node(&g, 10);
        let mut excl = vec![false; g.len()];
        for asn in [1, 2, 3] {
            excl[node(&g, asn).idx()] = true; // providers + T1 + T2
        }
        let cfg = PropagationConfig::default().with_excluded(excl);
        let out = propagate(&g, cloud, &cfg);
        let mut reached: Vec<u32> = out.reach_set().iter().map(|&n| g.asn(n).0).collect();
        reached.sort_unstable();
        assert_eq!(reached, vec![40, 50]);
    }

    #[test]
    fn valley_free_blocks_peer_peer_transit() {
        // 1 -p2p- 2 -p2p- 3: an announcement from 1 must not cross 2 to 3.
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(1), AsId(2), Relationship::P2p);
        b.add_link(AsId(2), AsId(3), Relationship::P2p);
        let g = b.build();
        let out = propagate(&g, node(&g, 1), &PropagationConfig::default());
        assert!(out.reachable(node(&g, 2)));
        assert!(!out.reachable(node(&g, 3)));
    }

    #[test]
    fn valley_free_blocks_provider_then_peer() {
        // 1 is customer of 2; 2 peers with 3; 3 has customer 4.
        // 2 learned 1's route from a customer => exports to peer 3. ✔
        // 3 learned it from a peer => exports only to customers => 4 gets it.
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(2), AsId(1), Relationship::P2c);
        b.add_link(AsId(2), AsId(3), Relationship::P2p);
        b.add_link(AsId(3), AsId(4), Relationship::P2c);
        b.add_link(AsId(4), AsId(5), Relationship::P2p);
        let g = b.build();
        let out = propagate(&g, node(&g, 1), &PropagationConfig::default());
        assert_eq!(out.selection(node(&g, 2)), Some((RouteClass::Customer, 1)));
        assert_eq!(out.selection(node(&g, 3)), Some((RouteClass::Peer, 2)));
        assert_eq!(out.selection(node(&g, 4)), Some((RouteClass::Provider, 3)));
        // 4 learned from a provider: not exported to 4's peer 5.
        assert!(!out.reachable(node(&g, 5)));
    }

    #[test]
    fn prefers_customer_over_shorter_peer() {
        // 10 has customer chain 10<-20<-30 (origin 30) and also peers with 30.
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(10), AsId(20), Relationship::P2c);
        b.add_link(AsId(20), AsId(30), Relationship::P2c);
        b.add_link(AsId(10), AsId(30), Relationship::P2p);
        let g = b.build();
        let out = propagate(&g, node(&g, 30), &PropagationConfig::default());
        // Customer route of length 2 beats the peer route of length 1.
        assert_eq!(out.selection(node(&g, 10)), Some((RouteClass::Customer, 2)));
        let hops = out.next_hops(&g, &PropagationConfig::default(), node(&g, 10));
        assert_eq!(hops, vec![node(&g, 20)]);
    }

    #[test]
    fn ties_keep_all_next_hops() {
        // Origin 1 has two providers 2 and 3; both are customers of 4.
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(2), AsId(1), Relationship::P2c);
        b.add_link(AsId(3), AsId(1), Relationship::P2c);
        b.add_link(AsId(4), AsId(2), Relationship::P2c);
        b.add_link(AsId(4), AsId(3), Relationship::P2c);
        let g = b.build();
        let out = propagate(&g, node(&g, 1), &PropagationConfig::default());
        let hops = out.next_hops(&g, &PropagationConfig::default(), node(&g, 4));
        assert_eq!(hops.len(), 2);
        assert_eq!(out.selection(node(&g, 4)), Some((RouteClass::Customer, 2)));
    }

    #[test]
    fn keep_ties_false_breaks_ties_by_lowest_index() {
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(2), AsId(1), Relationship::P2c);
        b.add_link(AsId(3), AsId(1), Relationship::P2c);
        b.add_link(AsId(4), AsId(2), Relationship::P2c);
        b.add_link(AsId(4), AsId(3), Relationship::P2c);
        let g = b.build();
        let cfg = PropagationConfig::default().with_keep_ties(false);
        let out = propagate(&g, node(&g, 1), &cfg);
        let all = out.next_hops(&g, &PropagationConfig::default(), node(&g, 4));
        let first = out.next_hops(&g, &cfg, node(&g, 4));
        assert_eq!(first.len(), 1);
        assert_eq!(first[0], all[0]);
    }

    #[test]
    fn origin_export_restriction_limits_spread() {
        let g = fig1();
        let cloud = node(&g, 10);
        // Announce only to the provider AS 1.
        let mut mask = vec![false; g.len()];
        mask[node(&g, 1).idx()] = true;
        let cfg = PropagationConfig::default().with_origin_export(mask);
        let out = propagate(&g, cloud, &cfg);
        // Peers 40/50 don't hear it directly and have no other path.
        assert!(!out.reachable(node(&g, 40)));
        assert!(!out.reachable(node(&g, 50)));
        // AS 1 has it as a customer route; exports to peer 2 and customer 60.
        assert!(out.reachable(node(&g, 60)));
        assert!(out.reachable(node(&g, 2)));
        assert_eq!(out.selection(node(&g, 2)), Some((RouteClass::Peer, 2)));
        // 2 learned from peer: exports to customers 3, 20 only.
        assert!(out.reachable(node(&g, 20)));
        assert_eq!(out.selection(node(&g, 3)), Some((RouteClass::Provider, 3)));
    }

    #[test]
    fn import_never_blocks_node_and_transit_through_it() {
        // chain origin 1 <- 2 <- 3 (2 is customer of 3... build: 2 provider of 1, 3 provider of 2)
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(2), AsId(1), Relationship::P2c);
        b.add_link(AsId(3), AsId(2), Relationship::P2c);
        let g = b.build();
        let mut import = vec![ImportPolicy::Normal; g.len()];
        import[node(&g, 2).idx()] = ImportPolicy::Never;
        let cfg = PropagationConfig::default().with_import(import);
        let out = propagate(&g, node(&g, 1), &cfg);
        assert!(!out.reachable(node(&g, 2)));
        assert!(!out.reachable(node(&g, 3)));
    }

    #[test]
    fn only_direct_import_accepts_just_the_origin_adjacency() {
        // Origin 1 peers with 2; 2 also reachable via provider 3 (longer).
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(1), AsId(2), Relationship::P2p);
        b.add_link(AsId(3), AsId(2), Relationship::P2c);
        b.add_link(AsId(3), AsId(1), Relationship::P2c);
        let g = b.build();
        let mut import = vec![ImportPolicy::Normal; g.len()];
        import[node(&g, 2).idx()] = ImportPolicy::OnlyDirectFromOrigin;
        let cfg = PropagationConfig::default().with_import(import);
        let out = propagate(&g, node(&g, 1), &cfg);
        assert_eq!(out.selection(node(&g, 2)), Some((RouteClass::Peer, 1)));
        let hops = out.next_hops(&g, &cfg, node(&g, 2));
        assert_eq!(hops, vec![node(&g, 1)]);
    }

    #[test]
    fn excluded_origin_yields_empty_outcome() {
        let g = fig1();
        let cloud = node(&g, 10);
        let mut excl = vec![false; g.len()];
        excl[cloud.idx()] = true;
        let cfg = PropagationConfig::default().with_excluded(excl);
        let out = propagate(&g, cloud, &cfg);
        assert_eq!(out.reachable_count(), 0);
        assert!(!out.reachable(cloud));
    }

    #[test]
    fn empty_graph() {
        let g = AsGraph::empty();
        // No nodes: nothing to propagate. (Constructing a NodeId for an
        // empty graph is a caller bug; we simulate via a 1-node graph.)
        assert!(g.is_empty());
        let mut b = AsGraphBuilder::new();
        b.add_isolated(AsId(1));
        let g = b.build();
        let out = propagate(&g, NodeId(0), &PropagationConfig::default());
        assert_eq!(out.reachable_count(), 0);
        assert!(out.reachable(NodeId(0))); // the origin holds its own route
    }

    #[test]
    fn next_hops_of_origin_and_unreachable_are_empty() {
        let g = fig1();
        let cloud = node(&g, 10);
        let mut excl = vec![false; g.len()];
        excl[node(&g, 1).idx()] = true;
        let cfg = PropagationConfig::default().with_excluded(excl);
        let out = propagate(&g, cloud, &cfg);
        assert!(out.next_hops(&g, &cfg, cloud).is_empty());
        assert!(out.next_hops(&g, &cfg, node(&g, 60)).is_empty());
    }

    #[test]
    fn provider_route_ties_across_two_providers() {
        // Origin 1; 2 and 3 both providers of 4 and both peers of 1.
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(1), AsId(2), Relationship::P2p);
        b.add_link(AsId(1), AsId(3), Relationship::P2p);
        b.add_link(AsId(2), AsId(4), Relationship::P2c);
        b.add_link(AsId(3), AsId(4), Relationship::P2c);
        let g = b.build();
        let out = propagate(&g, node(&g, 1), &PropagationConfig::default());
        assert_eq!(out.selection(node(&g, 4)), Some((RouteClass::Provider, 2)));
        let hops = out.next_hops(&g, &PropagationConfig::default(), node(&g, 4));
        assert_eq!(hops.len(), 2);
    }

    #[test]
    fn legacy_and_engine_share_one_config_type() {
        let g = fig1();
        let cloud = node(&g, 10);
        let mut excl = vec![false; g.len()];
        excl[node(&g, 1).idx()] = true;
        let cfg = PropagationConfig::default().with_excluded(excl);
        let via_engine = propagate(&g, cloud, &cfg);
        let via_legacy = propagate_legacy(&g, cloud, &cfg);
        assert_eq!(via_engine.reachable_count(), via_legacy.reachable_count());
        for n in g.nodes() {
            assert_eq!(via_engine.selection(n), via_legacy.selection(n));
        }
        assert!(cfg.keep_ties());
    }

    #[test]
    fn excluded_mask_mut_is_reusable_across_sizes() {
        let mut cfg = PropagationConfig::default();
        let m = cfg.excluded_mask_mut(4);
        m[2] = true;
        assert_eq!(cfg.excluded_mask_mut(4), &[false, false, true, false]);
        // Resizing clears the mask (stale indices would be wrong anyway).
        assert_eq!(cfg.excluded_mask_mut(2), &[false, false]);
    }

    /// Exhaustive cross-check on random small graphs: the 3-phase result
    /// must equal a fixpoint computation that literally simulates export
    /// rules until stable.
    mod prop {
        use super::*;
        use proptest::prelude::*;

        /// Reference implementation: Jacobi iteration of the raw export
        /// rules, recomputing every node's full candidate set each round.
        /// Converges on the Gao-Rexford domain (no provider-customer
        /// cycles), which is what `arb_graph` generates.
        fn reference(g: &AsGraph, origin: NodeId) -> Vec<Option<(RouteClass, u32)>> {
            let n = g.len();
            let mut best: Vec<Option<(RouteClass, u32)>> = vec![None; n];
            best[origin.idx()] = Some((RouteClass::Customer, 0));
            for _round in 0..=2 * n {
                let mut next = best.clone();
                let mut changed = false;
                for u in g.nodes() {
                    if u == origin {
                        continue;
                    }
                    let mut cand: Option<(RouteClass, u32)> = None;
                    let mut consider = |c: (RouteClass, u32)| {
                        cand = Some(match cand {
                            None => c,
                            Some(b) => b.min(c),
                        });
                    };
                    for &c in g.customers(u) {
                        // c exports its selection iff it is customer-class.
                        if let Some((RouteClass::Customer, l)) = best[c.idx()] {
                            consider((RouteClass::Customer, l + 1));
                        }
                    }
                    for &p in g.peers(u) {
                        if let Some((RouteClass::Customer, l)) = best[p.idx()] {
                            consider((RouteClass::Peer, l + 1));
                        }
                    }
                    for &w in g.providers(u) {
                        if let Some((_, l)) = best[w.idx()] {
                            consider((RouteClass::Provider, l + 1));
                        }
                    }
                    if cand != best[u.idx()] {
                        next[u.idx()] = cand;
                        changed = true;
                    }
                }
                best = next;
                if !changed {
                    break;
                }
            }
            best
        }

        /// Random *acyclic* relationship graphs: in a p2c link the provider
        /// always has the smaller ASN, so provider-customer cycles (which
        /// the Gao-Rexford model excludes) cannot occur.
        fn arb_graph() -> impl Strategy<Value = AsGraph> {
            proptest::collection::vec((0u32..10, 0u32..10, 0u8..2), 1..30).prop_map(|links| {
                let mut b = AsGraphBuilder::new();
                for (a, c, r) in links {
                    if a == c {
                        continue;
                    }
                    if r == 1 {
                        b.add_link(AsId(a), AsId(c), Relationship::P2p);
                    } else {
                        b.add_link(AsId(a.min(c)), AsId(a.max(c)), Relationship::P2c);
                    }
                }
                b.add_isolated(AsId(99));
                b.build()
            })
        }

        proptest! {
            /// The *engine* path (via the `propagate` shim) must equal the
            /// Jacobi fixpoint of the raw export rules — and the legacy
            /// implementation must agree node-for-node too.
            #[test]
            fn three_phase_equals_fixpoint(g in arb_graph(), seed in 0u32..10) {
                let origin = NodeId(seed % g.len() as u32);
                let out = propagate(&g, origin, &PropagationConfig::default());
                let legacy = propagate_legacy(&g, origin, &PropagationConfig::default());
                let reference = reference(&g, origin);
                for n in g.nodes() {
                    prop_assert_eq!(out.selection(n), reference[n.idx()], "node {} (origin {})", n, origin);
                    prop_assert_eq!(out.selection(n), legacy.selection(n), "engine vs legacy at {}", n);
                }
                prop_assert_eq!(out.reachable_count(), legacy.reachable_count());
            }

            /// Adding a settlement-free peer link can only grow the set of
            /// ASes that receive an announcement: customer routes are
            /// untouched, peer routes only gain options, and providers
            /// still export *some* best route to their customers. (Path
            /// lengths and classes may change arbitrarily — only the
            /// reach *set* is monotone.)
            #[test]
            fn reach_set_monotone_under_added_peer_link(
                g in arb_graph(),
                seed in 0u32..10,
                a in 0u32..10,
                b in 0u32..10,
            ) {
                let origin = NodeId(seed % g.len() as u32);
                let before = propagate(&g, origin, &PropagationConfig::default());
                // Add one new peer link between two random ASes.
                let mut builder = g.to_builder();
                let (x, y) = (AsId(a), AsId(b));
                if x == y || builder.contains_link(x, y) {
                    return Ok(());
                }
                builder.add_link(x, y, Relationship::P2p);
                let g2 = builder.build();
                // Same node universe iff both endpoints already existed.
                if g2.len() != g.len() {
                    return Ok(());
                }
                let origin2 = g2.index_of(g.asn(origin)).unwrap();
                let after = propagate(&g2, origin2, &PropagationConfig::default());
                for n in g.nodes() {
                    let n2 = g2.index_of(g.asn(n)).unwrap();
                    prop_assert!(
                        !before.reachable(n) || after.reachable(n2),
                        "node {} lost reachability when peer link {}-{} was added",
                        g.asn(n), x, y
                    );
                }
            }

            #[test]
            fn next_hops_are_consistent(g in arb_graph(), seed in 0u32..10) {
                let origin = NodeId(seed % g.len() as u32);
                let cfg = PropagationConfig::default();
                let out = propagate(&g, origin, &cfg);
                for n in g.nodes() {
                    let hops = out.next_hops(&g, &cfg, n);
                    if n == origin {
                        prop_assert!(hops.is_empty());
                        continue;
                    }
                    match out.selection(n) {
                        None => prop_assert!(hops.is_empty()),
                        Some((_, len)) => {
                            // Every reachable non-origin node has >= 1 next hop,
                            // and each next hop is exactly one hop closer.
                            prop_assert!(!hops.is_empty(), "node {} reachable but no next hops", n);
                            for h in hops {
                                let (_, hl) = out.selection(h).unwrap();
                                prop_assert_eq!(hl + 1, len);
                            }
                        }
                    }
                }
            }
        }
    }
}
