#![warn(missing_docs)]

//! # flatnet-bgpsim — valley-free BGP route propagation, all ties kept
//!
//! This crate implements the simulator at the heart of "Cloud Provider
//! Connectivity in the Flat Internet" (IMC 2020, §6.1): routes from an
//! origin AS propagate over an [`AsGraph`](flatnet_asgraph::AsGraph) under
//! the standard Gao-Rexford policy model —
//!
//! * **valley-free export**: an AS exports routes learned from customers
//!   (and its own prefixes) to everyone, but routes learned from peers or
//!   providers only to its customers;
//! * **local preference**: customer routes over peer routes over provider
//!   routes, then shortest AS path;
//! * **all paths tied for best propagate, without breaking ties** — the
//!   paper's explicit modelling choice for both reachability and the
//!   worst-case route-leak analysis.
//!
//! The module map follows the paper's analyses:
//!
//! * [`mod@propagate`] — the three-phase propagation semantics, the owned
//!   [`PropagationConfig`], and the single-origin [`propagate`] shim, with
//!   support for *node exclusion* (the `I \ P_o \ T1 \ T2` subgraphs
//!   behind hierarchy-free reachability), *origin export restriction*
//!   (§8's "announce to Tier-1/Tier-2/providers only"), and *import
//!   policies* (§8's peer locking).
//! * [`engine`] — the batched propagation engine: a compiled
//!   [`TopologySnapshot`], reusable per-worker [`Workspace`]s, and the
//!   builder-style [`Simulation`] sweep API every whole-Internet
//!   experiment runs on.
//! * [`lanes`] — the bit-parallel multi-origin kernel: 64/128/256
//!   origins per block (one to four `u64` lane words per node, width
//!   picked at runtime from CPU features via [`LaneWidth`], AVX2 path
//!   included), one frontier expansion advancing all of them, reach
//!   sets bit-identical to per-origin [`Workspace`] runs at every width
//!   (the `Simulation::run_sweep_reach` family).
//! * [`parallel`] — panic-isolated parallel sweeps with per-worker
//!   contexts (re-exported by `flatnet_core::parallel`).
//! * [`dag`] — the tied-best next-hop DAG and exact/floating path counting.
//! * [`mod@reliance`] — `rely(o, a)` (§7.1) in O(E) via a topological DP.
//! * [`leak`] — route-leak competition between a legitimate origin and a
//!   misconfigured AS (§8), with the erratum-corrected peer-locking rule.
//! * [`paths`] — tied-best path enumeration (used to check simulated paths
//!   against traceroute-observed paths, Appendix A).
//! * [`collectors`] — RouteViews-style RIB collection at monitor ASes,
//!   the raw input AS-relationship datasets are inferred from.

pub mod collectors;
pub mod dag;
pub mod engine;
pub mod lanes;
pub mod leak;
pub mod parallel;
pub mod paths;
pub mod propagate;
pub mod reliance;

pub use collectors::{collect_ribs, visible_links, RibEntry};
pub use dag::NextHopDag;
pub use engine::{Simulation, SweepCtx, TopologySnapshot, Workspace};
pub use lanes::{
    cpu_features, detected_lane_words, LaneExcluder, LaneWidth, LaneWorkspace, SweepReach, LANES,
    MAX_LANES, MAX_LANE_WORDS,
};
pub use leak::{
    simulate_leak, simulate_subprefix_hijack, subprefix_detour_fractions, DetourState,
    LeakOutcome, LeakScenario, LeakSim, LockingSemantics,
};
pub use parallel::{parallel_map, parallel_map_ctx, try_parallel_map, try_parallel_map_ctx, SweepError};
pub use propagate::{
    propagate, propagate_legacy, ImportPolicy, PropagationConfig, RouteClass, RoutingOutcome,
    UNREACHED,
};
pub use reliance::reliance;
