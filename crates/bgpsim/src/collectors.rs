//! Route-collector simulation: the BGP feeds that AS-relationship
//! datasets are built from.
//!
//! CAIDA's as-rel files (§4.1) come from algorithms run over RouteViews /
//! RIPE RIS RIB dumps — AS paths observed at a few hundred monitor ASes.
//! This module produces exactly that input: for a set of monitor
//! (vantage-point) ASes, the tied-best AS path each monitor holds toward
//! every origin, as a flat list of `(origin, path)` records. Downstream,
//! `flatnet-asgraph`'s relationship inference and `flatnet-mrt`'s
//! TABLE_DUMP_V2 encoding consume these.
//!
//! The structural limitation the paper leans on falls out for free: a
//! monitor only sees a p2p link if it sits in one of the two peers'
//! customer cones, so edge peering (cloud peering in particular) is
//! invisible to feeds built this way.

use crate::dag::NextHopDag;
use crate::engine::{Simulation, TopologySnapshot};
use crate::propagate::PropagationConfig;
use flatnet_asgraph::{AsGraph, AsId, NodeId};

/// One RIB entry observed at a monitor: the AS path from the monitor to
/// the origin, monitor first, origin last (as in a real RIB's AS_PATH
/// with the monitor's own AS prepended for uniformity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibEntry {
    /// The monitor AS holding this route.
    pub monitor: AsId,
    /// The origin AS of the prefix.
    pub origin: AsId,
    /// Full AS path `[monitor, ..., origin]` (no prepending, no loops).
    pub path: Vec<AsId>,
}

/// Collects, for each origin in `origins`, the best path each monitor
/// holds (one deterministic representative among ties: the lexicographically
/// smallest next-hop at each step). Unreachable monitor/origin pairs yield
/// no entry. O(|origins| · E).
pub fn collect_ribs(g: &AsGraph, monitors: &[NodeId], origins: &[NodeId]) -> Vec<RibEntry> {
    let cfg = PropagationConfig::default();
    let snap = TopologySnapshot::compile(g);
    let sim = Simulation::over(&snap);
    let mut ctx = sim.ctx();
    let mut out = Vec::new();
    for &o in origins {
        let outcome = ctx.run(o).to_outcome();
        let dag = NextHopDag::build(g, &cfg, &outcome);
        for &m in monitors {
            if m == o || dag.path_count(m) == 0.0 {
                continue;
            }
            // Deterministic representative path: smallest next hop (the
            // DAG's lists are sorted) at every step.
            let mut path = vec![g.asn(m)];
            let mut cur = m;
            while cur != o {
                let next = dag.next_hops(cur)[0];
                path.push(g.asn(next));
                cur = next;
            }
            out.push(RibEntry { monitor: g.asn(m), origin: g.asn(o), path });
        }
    }
    out
}

/// The set of AS adjacencies visible in a RIB collection (each consecutive
/// pair on any path), deduplicated and canonically ordered
/// `(min asn, max asn)`.
pub fn visible_links(ribs: &[RibEntry]) -> Vec<(AsId, AsId)> {
    let mut links: Vec<(AsId, AsId)> = ribs
        .iter()
        .flat_map(|e| e.path.windows(2))
        .map(|w| (w[0].min(w[1]), w[0].max(w[1])))
        .collect();
    links.sort_unstable();
    links.dedup();
    links
}

#[cfg(test)]
mod tests {
    use super::*;
    use flatnet_asgraph::{AsGraphBuilder, Relationship};

    /// Tier-1 1 over {2, 3}; 2 over stub 4; 3 over stub 5; 4 peers 5
    /// (edge peering invisible from above).
    fn sample() -> AsGraph {
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(1), AsId(2), Relationship::P2c);
        b.add_link(AsId(1), AsId(3), Relationship::P2c);
        b.add_link(AsId(2), AsId(4), Relationship::P2c);
        b.add_link(AsId(3), AsId(5), Relationship::P2c);
        b.add_link(AsId(4), AsId(5), Relationship::P2p);
        b.build()
    }

    fn node(g: &AsGraph, a: u32) -> NodeId {
        g.index_of(AsId(a)).unwrap()
    }

    #[test]
    fn paths_are_valid_and_start_end_correctly() {
        let g = sample();
        let monitors = vec![node(&g, 1), node(&g, 4)];
        let origins: Vec<NodeId> = g.nodes().collect();
        let ribs = collect_ribs(&g, &monitors, &origins);
        for e in &ribs {
            assert_eq!(*e.path.first().unwrap(), e.monitor);
            assert_eq!(*e.path.last().unwrap(), e.origin);
            // Consecutive hops are real adjacencies.
            for w in e.path.windows(2) {
                let a = g.index_of(w[0]).unwrap();
                let b = g.index_of(w[1]).unwrap();
                assert!(g.kind_between(a, b).is_some(), "{:?}", e.path);
            }
            // No loops.
            let mut sorted = e.path.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), e.path.len());
        }
        // Monitor 1 holds a route to every other AS (it's the top).
        assert_eq!(ribs.iter().filter(|e| e.monitor == AsId(1)).count(), 4);
    }

    #[test]
    fn edge_peering_invisible_to_top_monitor() {
        let g = sample();
        let origins: Vec<NodeId> = g.nodes().collect();
        // A monitor at the Tier-1 never routes through the 4-5 peering.
        let ribs = collect_ribs(&g, &[node(&g, 1)], &origins);
        let links = visible_links(&ribs);
        assert!(!links.contains(&(AsId(4), AsId(5))), "{links:?}");
        // A monitor at 4 *does* use its own peer link toward 5.
        let ribs = collect_ribs(&g, &[node(&g, 4)], &origins);
        let links = visible_links(&ribs);
        assert!(links.contains(&(AsId(4), AsId(5))), "{links:?}");
    }

    #[test]
    fn deterministic_representative_paths() {
        let g = sample();
        let monitors = vec![node(&g, 4)];
        let origins: Vec<NodeId> = g.nodes().collect();
        let a = collect_ribs(&g, &monitors, &origins);
        let b = collect_ribs(&g, &monitors, &origins);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_inputs() {
        let g = sample();
        assert!(collect_ribs(&g, &[], &[node(&g, 1)]).is_empty());
        assert!(collect_ribs(&g, &[node(&g, 1)], &[]).is_empty());
        assert!(visible_links(&[]).is_empty());
    }
}
