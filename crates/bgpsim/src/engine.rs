//! Batched propagation engine: compile the topology once, sweep many
//! origins with zero steady-state allocation.
//!
//! The per-call [`crate::propagate`] path allocates four arrays and a
//! queue per origin; a whole-Internet sweep (hierarchy-free reachability,
//! leak CDFs) runs it tens of thousands of times, so those allocations
//! and the pointer-chasing adjacency walks dominate the profile. This
//! module splits the work into three pieces:
//!
//! * [`TopologySnapshot`] — an immutable compressed-sparse-row copy of an
//!   [`AsGraph`], compiled once per topology and shared (it is `Sync`) by
//!   every worker of a sweep.
//! * [`Workspace`] — the mutable per-run state (distance arrays, BFS
//!   queue, bucket queue, reach bitset). Allocated once per worker and
//!   reused for every origin; after the first few runs a sweep performs
//!   no heap allocation at all.
//! * [`Simulation`] — a builder tying the two together:
//!   `Simulation::over(&snap).keep_ties(true).run(origin)` for one origin,
//!   [`Simulation::run_sweep`] / [`Simulation::run_sweep_map`] for batches
//!   (fanned out over [`crate::parallel`], one workspace per worker).
//!
//! ## Snapshot layout
//!
//! Per node `u`, all three relationship classes live in one contiguous
//! slice of `adj`, customers first:
//!
//! ```text
//! adj:  [ customers(u) | peers(u) | providers(u) | customers(u+1) | ... ]
//!        ^off[u]        ^cust_end[u]^peer_end[u]  ^off[u+1]
//! ```
//!
//! The customers-first split doubles as the precomputed per-node export
//! mask: an AS exports customer-learned routes to its whole range, but
//! peer/provider-learned routes only to the customer prefix
//! `adj[off[u]..cust_end[u]]` — exactly the slices the three phases walk.
//!
//! The provider phase replaces the legacy `BinaryHeap` with a bucket
//! queue (`Vec<Vec<u32>>` indexed by distance): edges all have weight 1,
//! so distances are dense small integers and each push/pop is O(1). Pop
//! and push counts are identical to the heap's — every pushed entry is
//! popped exactly once and relaxation uses the same strict `<` test — so
//! the `propagate.dijkstra_pops` / `propagate.export_checks` counters
//! stay bit-identical to the legacy path (asserted by
//! `tests/engine_equiv.rs` and `tests/metrics.rs`).
//!
//! The run itself is output-sensitive: a touched-node list doubles as
//! the reach set and the reset undo log, so a run costs O(reached +
//! edges-of-reached) rather than O(V + E), and resets clear only what
//! the previous run wrote. Counter parity survives because the skipped
//! work is exactly the work whose counters are computable arithmetically
//! (phase 2's per-receiver export checks come from precompiled peer
//! degrees) or order-normalized (phase 3 seeds from the touched list
//! sorted into the legacy's ascending node order, keeping the bucket
//! push/pop sequence identical).

use crate::lanes::{
    AsExclusionLanes, LaneArity, LaneExcluder, LanePools, LaneWidth, LaneWorkspace, Lanes,
    NodeWords, PooledLaneWs, SweepReach,
};
use crate::parallel::{self, SweepError};
use crate::propagate::{
    metrics, ImportPolicy, PolicyView, PropagationConfig, RouteClass, RoutingOutcome, UNREACHED,
};
use flatnet_asgraph::{AsGraph, NodeId};
use std::collections::VecDeque;

/// An immutable, compiled copy of an [`AsGraph`]'s adjacency, laid out
/// for propagation: one contiguous `u32` slice per node, split by
/// relationship class (customers, then peers, then providers).
///
/// Compile once per topology with [`TopologySnapshot::compile`]; the
/// snapshot is cheap to share across threads and never mutated.
#[derive(Debug, Clone)]
pub struct TopologySnapshot {
    n: u32,
    /// `off[u]..off[u+1]` is node `u`'s full adjacency range in `adj`.
    off: Vec<u32>,
    /// End (exclusive) of node `u`'s customer prefix within its range.
    cust_end: Vec<u32>,
    /// End (exclusive) of node `u`'s peer segment within its range.
    peer_end: Vec<u32>,
    /// All adjacency, class-contiguous per node, sorted within each class.
    adj: Vec<u32>,
    /// Total peer adjacency entries, for the phase-2 counter arithmetic.
    total_peer: u64,
}

impl TopologySnapshot {
    /// Compiles `g` into the CSR layout. O(V + E).
    pub fn compile(g: &AsGraph) -> Self {
        let n = g.len();
        let mut off = Vec::with_capacity(n + 1);
        let mut cust_end = Vec::with_capacity(n);
        let mut peer_end = Vec::with_capacity(n);
        let mut adj = Vec::new();
        off.push(0u32);
        for u in g.nodes() {
            for &c in g.customers(u) {
                adj.push(c.0);
            }
            cust_end.push(adj.len() as u32);
            for &p in g.peers(u) {
                adj.push(p.0);
            }
            peer_end.push(adj.len() as u32);
            for &w in g.providers(u) {
                adj.push(w.0);
            }
            off.push(adj.len() as u32);
        }
        let total_peer = cust_end
            .iter()
            .zip(&peer_end)
            .map(|(&c, &p)| (p - c) as u64)
            .sum();
        TopologySnapshot { n: n as u32, off, cust_end, peer_end, adj, total_peer }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// Whether the snapshot covers an empty graph.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of directed adjacency entries (2× the undirected link count).
    pub fn edge_entries(&self) -> usize {
        self.adj.len()
    }

    /// The raw CSR arrays, for external serialization (the snapshot
    /// store): `(off, cust_end, peer_end, adj, total_peer)`. The layout
    /// contract is the one documented on this type; rebuild with
    /// [`TopologySnapshot::from_raw_parts`].
    pub fn raw_parts(&self) -> (&[u32], &[u32], &[u32], &[u32], u64) {
        (&self.off, &self.cust_end, &self.peer_end, &self.adj, self.total_peer)
    }

    /// Reconstructs a snapshot from raw CSR arrays, validating every
    /// structural invariant the propagation kernels rely on — offsets
    /// monotone and in bounds, the customer/peer split ordered within
    /// each node's range, every adjacency entry a real node, and the
    /// peer-entry total consistent. Returns a description of the first
    /// violation instead of ever building a snapshot that could make a
    /// kernel index out of bounds.
    pub fn from_raw_parts(
        n: usize,
        off: Vec<u32>,
        cust_end: Vec<u32>,
        peer_end: Vec<u32>,
        adj: Vec<u32>,
        total_peer: u64,
    ) -> Result<Self, String> {
        if n > u32::MAX as usize {
            return Err(format!("node count {n} exceeds u32 range"));
        }
        if off.len() != n + 1 {
            return Err(format!("off has {} entries, want n+1 = {}", off.len(), n + 1));
        }
        if cust_end.len() != n || peer_end.len() != n {
            return Err(format!(
                "cust_end/peer_end have {}/{} entries, want n = {n}",
                cust_end.len(),
                peer_end.len()
            ));
        }
        if off[0] != 0 {
            return Err(format!("off[0] = {}, want 0", off[0]));
        }
        if off[n] as usize != adj.len() {
            return Err(format!("off[n] = {} but adj has {} entries", off[n], adj.len()));
        }
        let mut checked_peer: u64 = 0;
        for u in 0..n {
            let (lo, hi) = (off[u], off[u + 1]);
            if lo > hi {
                return Err(format!("off not monotone at node {u}: {lo} > {hi}"));
            }
            let (c, p) = (cust_end[u], peer_end[u]);
            if c < lo || p < c || hi < p {
                return Err(format!(
                    "class split out of order at node {u}: off {lo} cust_end {c} peer_end {p} end {hi}"
                ));
            }
            checked_peer += (p - c) as u64;
        }
        if checked_peer != total_peer {
            return Err(format!("total_peer = {total_peer} but ranges sum to {checked_peer}"));
        }
        if let Some(&bad) = adj.iter().find(|&&v| v as usize >= n) {
            return Err(format!("adjacency entry {bad} out of range (n = {n})"));
        }
        Ok(TopologySnapshot { n: n as u32, off, cust_end, peer_end, adj, total_peer })
    }

    #[inline]
    pub(crate) fn customers(&self, u: u32) -> &[u32] {
        &self.adj[self.off[u as usize] as usize..self.cust_end[u as usize] as usize]
    }

    #[inline]
    pub(crate) fn peers(&self, u: u32) -> &[u32] {
        &self.adj[self.cust_end[u as usize] as usize..self.peer_end[u as usize] as usize]
    }

    #[inline]
    pub(crate) fn providers(&self, u: u32) -> &[u32] {
        &self.adj[self.peer_end[u as usize] as usize..self.off[u as usize + 1] as usize]
    }

    #[inline]
    fn peer_deg(&self, u: u32) -> u64 {
        (self.peer_end[u as usize] - self.cust_end[u as usize]) as u64
    }
}

/// Reusable per-run propagation state: three distance arrays, the BFS
/// frontier, the provider-phase bucket queue, and the word-packed reach
/// bitset. Create once (per worker thread), run many origins through it.
///
/// After [`run_into`] the workspace *is* the result; the accessors mirror
/// [`RoutingOutcome`] without copying, and [`Workspace::to_outcome`]
/// clones into an owned outcome when one must outlive the workspace.
#[derive(Debug, Default)]
pub struct Workspace {
    dist_c: Vec<u32>,
    dist_p: Vec<u32>,
    dist_d: Vec<u32>,
    reach: Vec<u64>,
    /// Nodes with any distance entry set this run — the undo list that
    /// makes [`Workspace::reset`] O(reached) instead of O(n), and the
    /// iteration domain for the phases that only care about routed nodes.
    touched: Vec<u32>,
    queue: VecDeque<u32>,
    buckets: Vec<Vec<u32>>,
    max_bucket: usize,
    origin: u32,
    reached: u32,
    n: usize,
}

impl Workspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for `snap`, so the first run allocates
    /// everything up front.
    pub fn for_snapshot(snap: &TopologySnapshot) -> Self {
        let mut ws = Self::new();
        ws.reset(snap.len(), NodeId(0));
        ws
    }

    /// Clears all per-run state and sizes the buffers for an `n`-node
    /// graph. Reuses existing capacity, and when the size is unchanged
    /// only undoes the previous run's writes (via the touched list), so
    /// for a fixed topology a reset costs O(previously reached), not
    /// O(n), and never allocates after the first call.
    fn reset(&mut self, n: usize, origin: NodeId) {
        if self.dist_c.len() == n {
            // Every set reach bit belongs to a touched node, so clearing
            // whole words per touched node clears the bitset exactly.
            for t in 0..self.touched.len() {
                let i = self.touched[t] as usize;
                self.dist_c[i] = UNREACHED;
                self.dist_p[i] = UNREACHED;
                self.dist_d[i] = UNREACHED;
                self.reach[i >> 6] = 0;
            }
        } else {
            self.dist_c.clear();
            self.dist_c.resize(n, UNREACHED);
            self.dist_p.clear();
            self.dist_p.resize(n, UNREACHED);
            self.dist_d.clear();
            self.dist_d.resize(n, UNREACHED);
            self.reach.clear();
            self.reach.resize(n.div_ceil(64), 0);
        }
        self.touched.clear();
        self.queue.clear();
        for b in &mut self.buckets {
            b.clear();
        }
        self.max_bucket = 0;
        self.origin = origin.0;
        self.reached = 0;
        self.n = n;
    }

    /// First-touch bookkeeping: sets `i`'s reach bit, records it on the
    /// undo list, and counts it — exactly once per node per run.
    #[inline]
    fn mark(&mut self, i: u32) {
        let w = (i >> 6) as usize;
        let bit = 1u64 << (i & 63);
        if self.reach[w] & bit == 0 {
            self.reach[w] |= bit;
            self.touched.push(i);
            self.reached += 1;
        }
    }

    /// The origin of the most recent run.
    pub fn origin(&self) -> NodeId {
        NodeId(self.origin)
    }

    /// Number of nodes covered by the most recent run.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the workspace has not been sized yet.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The selected best route of `n` after the most recent run (see
    /// [`RoutingOutcome::selection`]).
    #[inline]
    pub fn selection(&self, n: NodeId) -> Option<(RouteClass, u32)> {
        let i = n.idx();
        if self.dist_c[i] != UNREACHED {
            Some((RouteClass::Customer, self.dist_c[i]))
        } else if self.dist_p[i] != UNREACHED {
            Some((RouteClass::Peer, self.dist_p[i]))
        } else if self.dist_d[i] != UNREACHED {
            Some((RouteClass::Provider, self.dist_d[i]))
        } else {
            None
        }
    }

    /// Whether `n` received the announcement in the most recent run.
    #[inline]
    pub fn reachable(&self, n: NodeId) -> bool {
        let i = n.idx();
        (self.reach[i >> 6] >> (i & 63)) & 1 == 1
    }

    /// Number of ASes reached by the most recent run, origin excluded.
    /// O(1): the bitset popcount is maintained during the run.
    pub fn reachable_count(&self) -> usize {
        (self.reached as usize).saturating_sub(1)
    }

    /// The word-packed reach bitset of the most recent run (bit = node
    /// index, origin bit set). Borrowed — the zero-allocation replacement
    /// for [`RoutingOutcome::reach_set`] in hot loops.
    pub fn reach_words(&self) -> &[u64] {
        &self.reach
    }

    /// Runs one origin over `snap` under `cfg`, leaving the result in the
    /// workspace accessors — the long-lived-reuse entry point for callers
    /// that hold a workspace across many runs (and possibly across
    /// *different* snapshots: the buffers resize automatically when the
    /// snapshot's node count changes, as during a hot-reload).
    ///
    /// Unlike [`Simulation`], which borrows its snapshot, this takes the
    /// snapshot per call, so a daemon can keep one workspace per worker
    /// while snapshots come and go behind an `Arc` swap.
    pub fn run(&mut self, snap: &TopologySnapshot, origin: NodeId, cfg: &PropagationConfig) {
        run_into(snap, origin, &cfg.view(), self)
    }

    /// Clones the run's result into an owned [`RoutingOutcome`].
    pub fn to_outcome(&self) -> RoutingOutcome {
        RoutingOutcome::from_parts(
            NodeId(self.origin),
            self.dist_c.clone(),
            self.dist_p.clone(),
            self.dist_d.clone(),
            self.reach.clone(),
            self.reached,
        )
    }
}

/// Runs one origin's propagation over `snap` into `ws`.
///
/// This is the engine's hot loop; semantics and observability counters
/// are bit-identical to [`crate::propagate::propagate_legacy`] (see the
/// module docs for the bucket-queue parity argument).
pub(crate) fn run_into(
    snap: &TopologySnapshot,
    origin: NodeId,
    pol: &PolicyView<'_>,
    ws: &mut Workspace,
) {
    let n = snap.len();
    let obs = metrics();
    obs.runs.inc();
    let started = std::time::Instant::now();
    ws.reset(n, origin);
    if n == 0 || pol.is_excluded(origin) {
        return;
    }
    let mut export_checks = 0u64;
    let mut dijkstra_pops = 0u64;

    // Phase 1: customer routes spread up provider edges (plain BFS, all
    // edges weight 1). The origin's own route behaves like a customer route.
    ws.dist_c[origin.idx()] = 0;
    ws.mark(origin.0);
    ws.queue.push_back(origin.0);
    while let Some(ui) = ws.queue.pop_front() {
        let du = ws.dist_c[ui as usize];
        for &pi in snap.providers(ui) {
            export_checks += 1;
            if ws.dist_c[pi as usize] == UNREACHED && pol.import_ok(origin, NodeId(pi), NodeId(ui))
            {
                ws.dist_c[pi as usize] = du + 1;
                ws.mark(pi);
                ws.queue.push_back(pi);
            }
        }
    }
    let customer_reached = ws.touched.len();

    // Phase 2: peers export customer/origin routes; a single relaxation,
    // driven from the customer-reached frontier (the touched prefix)
    // instead of scanning all n receivers — p2p adjacency is symmetric,
    // so pushing sender→peers visits exactly the (receiver, sender)
    // pairs the receiver-side scan would have found routes on. The
    // legacy loop counts an export check for every peer edge of every
    // non-excluded non-origin receiver, reached or not, so that count is
    // reproduced arithmetically from the precompiled peer degrees.
    let mut peer_checks = snap.total_peer - snap.peer_deg(origin.0);
    if let Some(mask) = pol.excluded {
        for (i, &ex) in mask.iter().enumerate() {
            if ex {
                peer_checks -= snap.peer_deg(i as u32);
            }
        }
    }
    export_checks += peer_checks;
    for t in 0..customer_reached {
        let vi = ws.touched[t];
        let dv = ws.dist_c[vi as usize] + 1;
        for &ui in snap.peers(vi) {
            if ui != origin.0
                && pol.import_ok(origin, NodeId(ui), NodeId(vi))
                && dv < ws.dist_p[ui as usize]
            {
                ws.dist_p[ui as usize] = dv;
                ws.mark(ui);
            }
        }
    }

    // Phase 3: providers export their selected best to customers. All
    // edges are weight 1 and distances dense, so a bucket queue indexed
    // by distance replaces the heap; each bucket only receives pushes
    // from strictly smaller distances, so a single ascending scan drains
    // everything. Every node with a customer or peer route is on the
    // touched list; seeding must scan them in ascending node order (the
    // legacy iteration order) so the bucket push/pop sequence — and with
    // it `propagate.dijkstra_pops` — stays bit-identical, hence the sort.
    ws.touched.sort_unstable();
    let seeds = ws.touched.len();
    for t in 0..seeds {
        let i = ws.touched[t];
        let w = NodeId(i);
        let (dc, dp) = (ws.dist_c[i as usize], ws.dist_p[i as usize]);
        let s = if dc != UNREACHED { dc } else { dp };
        for &uj in snap.customers(i) {
            export_checks += 1;
            let u = NodeId(uj);
            // A node with a customer/peer route already prefers it over
            // any provider route; still record dist_d for completeness
            // of tie information at equal class only — the selection
            // function ignores dist_d when a better class exists.
            if pol.import_ok(origin, u, w) && u != origin && s + 1 < ws.dist_d[uj as usize] {
                ws.dist_d[uj as usize] = s + 1;
                ws.mark(uj);
                let b = (s + 1) as usize;
                if b >= ws.buckets.len() {
                    ws.buckets.resize_with(b + 1, Vec::new);
                }
                ws.buckets[b].push(uj);
                ws.max_bucket = ws.max_bucket.max(b);
            }
        }
    }
    // `buckets.len()` can exceed `max_bucket` when a previous run on this
    // workspace reached farther; the extra buckets are empty and cost one
    // `pop() == None` each.
    let mut d = 0usize;
    while d < ws.buckets.len() {
        while let Some(ui) = ws.buckets[d].pop() {
            dijkstra_pops += 1;
            let iu = ui as usize;
            if d as u32 != ws.dist_d[iu] {
                continue; // stale entry
            }
            // `ui` only *exports* its provider route if that is its selection.
            if ws.dist_c[iu] != UNREACHED || ws.dist_p[iu] != UNREACHED {
                continue;
            }
            let nd = d as u32 + 1;
            for &xi in snap.customers(ui) {
                export_checks += 1;
                let x = NodeId(xi);
                if x == origin {
                    continue;
                }
                if pol.import_ok(origin, x, NodeId(ui)) && nd < ws.dist_d[xi as usize] {
                    ws.dist_d[xi as usize] = nd;
                    ws.mark(xi);
                    let b = d + 1;
                    if b >= ws.buckets.len() {
                        ws.buckets.resize_with(b + 1, Vec::new);
                    }
                    ws.buckets[b].push(xi);
                    ws.max_bucket = ws.max_bucket.max(b);
                }
            }
        }
        d += 1;
    }

    // A node that selects a customer or peer route never uses its provider
    // route; clear dist_d there so `selection` and `next_hops` agree and
    // downstream consumers (DAG, reliance) see only selected routes. The
    // reach bitset and its popcount were maintained incrementally by
    // `mark` — the touched list IS the reach set, so only it is scanned.
    let (mut sel_c, mut sel_p, mut sel_d) = (0u64, 0u64, 0u64);
    for t in 0..ws.touched.len() {
        let i = ws.touched[t] as usize;
        if ws.dist_c[i] != UNREACHED {
            sel_c += 1;
            ws.dist_d[i] = UNREACHED;
        } else if ws.dist_p[i] != UNREACHED {
            sel_p += 1;
            ws.dist_d[i] = UNREACHED;
        } else {
            sel_d += 1;
        }
    }
    obs.routes_customer.add(sel_c);
    obs.routes_peer.add(sel_p);
    obs.routes_provider.add(sel_d);
    obs.export_checks.add(export_checks);
    obs.dijkstra_pops.add(dijkstra_pops);
    obs.run_us.record_us(started.elapsed().as_micros() as u64);
}

/// Builder-style front end over a compiled [`TopologySnapshot`].
///
/// ```
/// use flatnet_asgraph::{AsGraphBuilder, AsId, Relationship};
/// use flatnet_bgpsim::engine::{Simulation, TopologySnapshot};
///
/// let mut b = AsGraphBuilder::new();
/// b.add_link(AsId(1), AsId(2), Relationship::P2c);
/// let g = b.build();
/// let snap = TopologySnapshot::compile(&g);
/// let origin = g.index_of(AsId(2)).unwrap();
/// let out = Simulation::over(&snap).keep_ties(true).run(origin);
/// assert_eq!(out.reachable_count(), 1);
/// ```
#[derive(Debug)]
pub struct Simulation<'s> {
    snap: &'s TopologySnapshot,
    cfg: PropagationConfig,
    threads: usize,
    /// Kernel lane width for the `run_sweep_reach*` family; `Auto`
    /// (default) picks the widest width the CPU runs well and clamps to
    /// the sweep's origin count (see [`LaneWidth`]).
    lane_width: LaneWidth,
    /// Checked-out-and-returned pools of kernel workspaces, one pool per
    /// lane width: repeated reach sweeps on one `Simulation` (per-block
    /// cache warming, multi-pass profiles, benchmark reps) reuse buffers
    /// instead of paying allocation plus first-touch page faults every
    /// sweep, and a width change draws from a different pool without
    /// discarding the others' warm workspaces.
    lane_pool: LanePools,
}

impl Clone for Simulation<'_> {
    fn clone(&self) -> Self {
        // Pooled workspaces are transient scratch; a clone starts empty.
        Simulation {
            snap: self.snap,
            cfg: self.cfg.clone(),
            threads: self.threads,
            lane_width: self.lane_width,
            lane_pool: LanePools::default(),
        }
    }
}

/// A [`LaneWorkspace`] checked out of a [`Simulation`]'s width-matched
/// pool; returned on drop (including when a sweep worker unwinds).
struct PooledLanes<'p, T: PooledLaneWs> {
    ws: Option<T>,
    pool: &'p LanePools,
}

impl<T: PooledLaneWs> PooledLanes<'_, T> {
    fn get(&mut self) -> &mut T {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl<T: PooledLaneWs> Drop for PooledLanes<'_, T> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            T::put(self.pool, ws);
        }
    }
}

impl<'s> Simulation<'s> {
    /// Checks a kernel workspace of the requested width out of its pool
    /// (or sizes a fresh one for the snapshot); the guard returns it on
    /// drop.
    fn lane_ws<T: PooledLaneWs>(&self) -> PooledLanes<'_, T> {
        let ws = T::take(&self.lane_pool).unwrap_or_else(|| T::for_snapshot(self.snap));
        PooledLanes { ws: Some(ws), pool: &self.lane_pool }
    }
    /// Starts a simulation over a compiled snapshot with default config
    /// (no restrictions, all ties kept, auto thread count for sweeps,
    /// auto lane width).
    pub fn over(snap: &'s TopologySnapshot) -> Self {
        Simulation {
            snap,
            cfg: PropagationConfig::default(),
            threads: 0,
            lane_width: LaneWidth::Auto,
            lane_pool: LanePools::default(),
        }
    }

    /// Replaces the whole propagation config.
    pub fn config(mut self, cfg: PropagationConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets per-node import policies (peer locking).
    pub fn policy(mut self, policies: Vec<ImportPolicy>) -> Self {
        self.cfg = self.cfg.with_import(policies);
        self
    }

    /// Sets the excluded-node mask (`true` = removed from the topology).
    pub fn excluded(mut self, mask: Vec<bool>) -> Self {
        self.cfg = self.cfg.with_excluded(mask);
        self
    }

    /// Restricts the origin to announcing only to neighbors flagged `true`.
    pub fn origin_export(mut self, mask: Vec<bool>) -> Self {
        self.cfg = self.cfg.with_origin_export(mask);
        self
    }

    /// Whether `next_hops` keeps every tied-best hop (default `true`).
    pub fn keep_ties(mut self, keep: bool) -> Self {
        self.cfg = self.cfg.with_keep_ties(keep);
        self
    }

    /// Worker threads for [`Self::run_sweep`] and friends; `0` (default)
    /// uses the available parallelism.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Kernel lane width for [`Self::run_sweep_reach`] and friends:
    /// origins per bit-parallel block (64/128/256, or [`LaneWidth::Auto`]
    /// — the default — to pick from detected CPU features). The width
    /// never changes results, only throughput; whatever is selected is
    /// clamped down for sweeps whose origin count fits a narrower block
    /// ([`LaneWidth::words_for`]).
    pub fn lane_width(mut self, width: LaneWidth) -> Self {
        self.lane_width = width;
        self
    }

    /// The simulation's propagation config.
    pub fn cfg(&self) -> &PropagationConfig {
        &self.cfg
    }

    /// A fresh worker context (own config clone + workspace) for manual
    /// batching; [`Self::run_sweep_map`] creates one per worker itself.
    pub fn ctx(&self) -> SweepCtx<'s> {
        SweepCtx {
            snap: self.snap,
            cfg: self.cfg.clone(),
            ws: Workspace::for_snapshot(self.snap),
        }
    }

    /// Propagates a single origin, returning an owned outcome.
    pub fn run(&self, origin: NodeId) -> RoutingOutcome {
        let mut ws = Workspace::for_snapshot(self.snap);
        run_into(self.snap, origin, &self.cfg.view(), &mut ws);
        ws.to_outcome()
    }

    /// Propagates every origin (in parallel, one workspace per worker),
    /// returning owned outcomes in input order.
    pub fn run_sweep(&self, origins: &[NodeId]) -> Vec<RoutingOutcome> {
        self.run_sweep_map(origins, |ctx, o| {
            ctx.run(o);
            ctx.workspace().to_outcome()
        })
    }

    /// Sweeps `origins`, reducing each run inside the worker via `f` —
    /// the zero-copy form: `f` reads the worker's [`Workspace`] and
    /// returns only what the caller keeps (a count, a fraction, ...).
    ///
    /// A panic in `f` aborts the sweep naming the offending item; use
    /// [`Self::try_run_sweep_map`] for per-item errors instead.
    pub fn run_sweep_map<R, F>(&self, origins: &[NodeId], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut SweepCtx<'s>, NodeId) -> R + Sync,
    {
        parallel::parallel_map_ctx(origins, self.threads, || self.ctx(), |ctx, &o| f(ctx, o))
    }

    /// Like [`Self::run_sweep_map`], but a panic in `f` becomes a
    /// per-item [`SweepError`] while every other origin still completes.
    pub fn try_run_sweep_map<R, F>(
        &self,
        origins: &[NodeId],
        f: F,
    ) -> Vec<Result<R, SweepError>>
    where
        R: Send,
        F: Fn(&mut SweepCtx<'s>, NodeId) -> R + Sync,
    {
        parallel::try_parallel_map_ctx(origins, self.threads, || self.ctx(), |ctx, &o| f(ctx, o))
    }

    /// Sweeps `origins` through the bit-parallel kernel
    /// ([`crate::lanes`]): origins are chunked into 64/128/256-lane
    /// blocks (per the configured [`Self::lane_width`]), each block
    /// advances all its origins in one lane-vector frontier expansion,
    /// and blocks fan out over [`crate::parallel`] (one [`LaneWorkspace`]
    /// per worker). Returns the materialized reach bitsets, bit-identical
    /// to per-origin [`Workspace`] runs under the same config at every
    /// width.
    ///
    /// Reach sets only — no distances, selections, or tie paths; use
    /// [`Self::run`] / [`Self::run_sweep_map`] when those are needed.
    pub fn run_sweep_reach(&self, origins: &[NodeId]) -> SweepReach {
        self.run_sweep_reach_with(origins, |_, _| {})
    }

    /// Like [`Self::run_sweep_reach`], with a per-origin exclusion fill:
    /// `fill` runs once per origin and installs that origin's exclusions
    /// through a [`LaneExcluder`] (on top of the shared config mask) —
    /// the word-parallel analogue of refilling
    /// [`PropagationConfig::excluded_mask_mut`] per origin.
    pub fn run_sweep_reach_with<F>(&self, origins: &[NodeId], fill: F) -> SweepReach
    where
        F: Fn(NodeId, &mut LaneExcluder<'_>) + Sync,
    {
        match self.lane_width.words_for(origins.len()) {
            1 => self.sweep_reach_w::<1, F>(origins, fill),
            2 => self.sweep_reach_w::<2, F>(origins, fill),
            _ => self.sweep_reach_w::<4, F>(origins, fill),
        }
    }

    /// [`Self::run_sweep_reach_with`] monomorphized at lane width `W`.
    fn sweep_reach_w<const W: usize, F>(&self, origins: &[NodeId], fill: F) -> SweepReach
    where
        Lanes<W>: LaneArity,
        [NodeWords<W>]: AsExclusionLanes,
        LaneWorkspace<W>: PooledLaneWs,
        F: Fn(NodeId, &mut LaneExcluder<'_>) + Sync,
    {
        let wp = self.snap.len().div_ceil(64);
        let blocks: Vec<&[NodeId]> = origins.chunks(LaneWorkspace::<W>::BLOCK_LANES).collect();
        let parts: Vec<(Vec<u64>, Vec<u32>)> = parallel::parallel_map_ctx(
            &blocks,
            self.threads,
            || self.lane_ws::<LaneWorkspace<W>>(),
            |pw, block| {
                let ws = pw.get();
                ws.run_block_inner(self.snap, block, &self.cfg, |o, ex| fill(o, ex), true);
                let mut words = Vec::with_capacity(block.len() * wp);
                let mut counts = Vec::with_capacity(block.len());
                for k in 0..block.len() {
                    words.extend_from_slice(ws.lane_reach_words(k));
                    counts.push(ws.lane_reachable_count(k) as u32);
                }
                (words, counts)
            },
        );
        let mut words = Vec::with_capacity(origins.len() * wp);
        let mut counts = Vec::with_capacity(origins.len());
        for (w, c) in parts {
            words.extend_from_slice(&w);
            counts.extend_from_slice(&c);
        }
        SweepReach::from_parts(self.snap.len(), origins.to_vec(), words, counts)
    }

    /// The counts-only form of [`Self::run_sweep_reach`]: per-origin
    /// reachable counts (origin excluded) without materializing the
    /// reach bitsets — what all-origin profile sweeps want, where the
    /// full transposed bitset would be O(origins × nodes) memory.
    pub fn run_sweep_reach_counts(&self, origins: &[NodeId]) -> Vec<u32> {
        self.run_sweep_reach_counts_with(origins, |_, _| {})
    }

    /// [`Self::run_sweep_reach_counts`] with a per-origin exclusion fill
    /// (see [`Self::run_sweep_reach_with`]).
    pub fn run_sweep_reach_counts_with<F>(&self, origins: &[NodeId], fill: F) -> Vec<u32>
    where
        F: Fn(NodeId, &mut LaneExcluder<'_>) + Sync,
    {
        match self.lane_width.words_for(origins.len()) {
            1 => self.sweep_counts_w::<1, F>(origins, fill),
            2 => self.sweep_counts_w::<2, F>(origins, fill),
            _ => self.sweep_counts_w::<4, F>(origins, fill),
        }
    }

    /// [`Self::run_sweep_reach_counts_with`] monomorphized at width `W`.
    fn sweep_counts_w<const W: usize, F>(&self, origins: &[NodeId], fill: F) -> Vec<u32>
    where
        Lanes<W>: LaneArity,
        [NodeWords<W>]: AsExclusionLanes,
        LaneWorkspace<W>: PooledLaneWs,
        F: Fn(NodeId, &mut LaneExcluder<'_>) + Sync,
    {
        let blocks: Vec<&[NodeId]> = origins.chunks(LaneWorkspace::<W>::BLOCK_LANES).collect();
        let parts: Vec<Vec<u32>> = parallel::parallel_map_ctx(
            &blocks,
            self.threads,
            || self.lane_ws::<LaneWorkspace<W>>(),
            |pw, block| {
                let ws = pw.get();
                ws.run_block_inner(self.snap, block, &self.cfg, |o, ex| fill(o, ex), false);
                (0..block.len()).map(|k| ws.lane_reachable_count(k) as u32).collect()
            },
        );
        parts.into_iter().flatten().collect()
    }

    /// Like [`Self::run_sweep_reach_counts_with`], but a panic in `fill`
    /// becomes a per-origin [`SweepError`] (indexed into `origins`)
    /// while every other lane of the block still completes — the kernel
    /// analogue of [`Self::try_run_sweep_map`].
    pub fn try_run_sweep_reach_counts_with<F>(
        &self,
        origins: &[NodeId],
        fill: F,
    ) -> Vec<Result<u32, SweepError>>
    where
        F: Fn(NodeId, &mut LaneExcluder<'_>) + Sync,
    {
        match self.lane_width.words_for(origins.len()) {
            1 => self.try_sweep_counts_w::<1, F>(origins, fill),
            2 => self.try_sweep_counts_w::<2, F>(origins, fill),
            _ => self.try_sweep_counts_w::<4, F>(origins, fill),
        }
    }

    /// [`Self::try_run_sweep_reach_counts_with`] monomorphized at `W`.
    fn try_sweep_counts_w<const W: usize, F>(
        &self,
        origins: &[NodeId],
        fill: F,
    ) -> Vec<Result<u32, SweepError>>
    where
        Lanes<W>: LaneArity,
        [NodeWords<W>]: AsExclusionLanes,
        LaneWorkspace<W>: PooledLaneWs,
        F: Fn(NodeId, &mut LaneExcluder<'_>) + Sync,
    {
        let block_lanes = LaneWorkspace::<W>::BLOCK_LANES;
        let blocks: Vec<&[NodeId]> = origins.chunks(block_lanes).collect();
        let parts = parallel::try_parallel_map_ctx(
            &blocks,
            self.threads,
            || self.lane_ws::<LaneWorkspace<W>>(),
            |pw, block| {
                let ws = pw.get();
                let mut lane_errs: Vec<(usize, String)> = Vec::new();
                let mut lane = 0usize;
                ws.run_block_inner(
                    self.snap,
                    block,
                    &self.cfg,
                    |o, ex| {
                        let k = lane;
                        lane += 1;
                        let caught = std::panic::catch_unwind(
                            std::panic::AssertUnwindSafe(|| fill(o, &mut *ex)),
                        );
                        if let Err(payload) = caught {
                            lane_errs.push((k, parallel::panic_message(payload.as_ref())));
                            // Kill the lane: an excluded origin yields the
                            // empty outcome, so partial exclusions from the
                            // half-run fill cannot leak into the result.
                            ex.exclude(o);
                        }
                    },
                    false,
                );
                let counts: Vec<u32> =
                    (0..block.len()).map(|k| ws.lane_reachable_count(k) as u32).collect();
                (counts, lane_errs)
            },
        );
        let mut out = Vec::with_capacity(origins.len());
        for (bi, part) in parts.into_iter().enumerate() {
            let base = bi * block_lanes;
            match part {
                Ok((counts, errs)) => {
                    let start = out.len();
                    out.extend(counts.into_iter().map(Ok));
                    for (lane, message) in errs {
                        out[start + lane] = Err(SweepError { index: base + lane, message });
                    }
                }
                Err(e) => {
                    let blk_len = origins.len().min(base + block_lanes) - base;
                    out.extend((0..blk_len).map(|k| {
                        Err(SweepError { index: base + k, message: e.message.clone() })
                    }));
                }
            }
        }
        out
    }
}

/// One worker's state for a sweep: the shared snapshot, a private config
/// (whose masks may be refilled per origin via
/// [`PropagationConfig::excluded_mask_mut`]), and a private workspace.
#[derive(Debug)]
pub struct SweepCtx<'s> {
    snap: &'s TopologySnapshot,
    cfg: PropagationConfig,
    ws: Workspace,
}

impl<'s> SweepCtx<'s> {
    /// The shared compiled topology.
    pub fn snapshot(&self) -> &'s TopologySnapshot {
        self.snap
    }

    /// This worker's propagation config.
    pub fn config(&self) -> &PropagationConfig {
        &self.cfg
    }

    /// Mutable access to this worker's config, e.g. to refill the
    /// exclusion mask for the next origin without reallocating.
    pub fn config_mut(&mut self) -> &mut PropagationConfig {
        &mut self.cfg
    }

    /// The workspace holding the most recent run's result.
    pub fn workspace(&self) -> &Workspace {
        &self.ws
    }

    /// Propagates `origin` under the current config, reusing this
    /// worker's buffers; returns the workspace holding the result.
    pub fn run(&mut self, origin: NodeId) -> &Workspace {
        run_into(self.snap, origin, &self.cfg.view(), &mut self.ws);
        &self.ws
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate::propagate_legacy;
    use flatnet_asgraph::{AsGraphBuilder, AsId, Relationship};

    fn diamond() -> AsGraph {
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(2), AsId(1), Relationship::P2c);
        b.add_link(AsId(3), AsId(1), Relationship::P2c);
        b.add_link(AsId(4), AsId(2), Relationship::P2c);
        b.add_link(AsId(4), AsId(3), Relationship::P2c);
        b.add_link(AsId(4), AsId(5), Relationship::P2p);
        b.add_link(AsId(5), AsId(6), Relationship::P2c);
        b.build()
    }

    #[test]
    fn snapshot_ranges_match_graph_adjacency() {
        let g = diamond();
        let snap = TopologySnapshot::compile(&g);
        assert_eq!(snap.len(), g.len());
        for u in g.nodes() {
            let custs: Vec<u32> = g.customers(u).iter().map(|n| n.0).collect();
            let peers: Vec<u32> = g.peers(u).iter().map(|n| n.0).collect();
            let provs: Vec<u32> = g.providers(u).iter().map(|n| n.0).collect();
            assert_eq!(snap.customers(u.0), custs.as_slice(), "customers of {u}");
            assert_eq!(snap.peers(u.0), peers.as_slice(), "peers of {u}");
            assert_eq!(snap.providers(u.0), provs.as_slice(), "providers of {u}");
        }
    }

    #[test]
    fn workspace_matches_legacy_on_every_origin() {
        let g = diamond();
        let snap = TopologySnapshot::compile(&g);
        let mut ws = Workspace::for_snapshot(&snap);
        for origin in g.nodes() {
            run_into(&snap, origin, &PolicyView::default(), &mut ws);
            let legacy = propagate_legacy(&g, origin, &PropagationConfig::default());
            assert_eq!(ws.reachable_count(), legacy.reachable_count(), "origin {origin}");
            for n in g.nodes() {
                assert_eq!(ws.selection(n), legacy.selection(n), "origin {origin}, node {n}");
                assert_eq!(ws.reachable(n), legacy.reachable(n));
            }
            assert_eq!(ws.reach_words(), legacy.reach_words());
        }
    }

    #[test]
    fn sweep_reuses_buffers_and_matches_single_runs() {
        let g = diamond();
        let snap = TopologySnapshot::compile(&g);
        let sim = Simulation::over(&snap).threads(2);
        let origins: Vec<NodeId> = g.nodes().collect();
        let counts = sim.run_sweep_map(&origins, |ctx, o| ctx.run(o).reachable_count());
        for (o, &c) in origins.iter().zip(&counts) {
            assert_eq!(c, sim.run(*o).reachable_count(), "origin {o}");
        }
    }

    #[test]
    fn run_sweep_returns_owned_outcomes_in_order() {
        let g = diamond();
        let snap = TopologySnapshot::compile(&g);
        let origins: Vec<NodeId> = g.nodes().collect();
        let outs = Simulation::over(&snap).threads(1).run_sweep(&origins);
        assert_eq!(outs.len(), origins.len());
        for (o, out) in origins.iter().zip(&outs) {
            assert_eq!(out.origin(), *o);
        }
    }

    #[test]
    fn ctx_mask_refill_equals_fresh_configs() {
        let g = diamond();
        let snap = TopologySnapshot::compile(&g);
        let sim = Simulation::over(&snap);
        let mut ctx = sim.ctx();
        let origin = g.index_of(AsId(1)).unwrap();
        let banned = g.index_of(AsId(2)).unwrap();
        // First run with node 2 excluded, second with a clean mask: the
        // refilled mask must not leak the previous origin's exclusions.
        let mask = ctx.config_mut().excluded_mask_mut(g.len());
        mask.fill(false);
        mask[banned.idx()] = true;
        let with_excl = ctx.run(origin).reachable_count();
        ctx.config_mut().excluded_mask_mut(g.len()).fill(false);
        let clean = ctx.run(origin).reachable_count();
        assert_eq!(clean, sim.run(origin).reachable_count());
        assert!(with_excl < clean);
    }

    #[test]
    fn try_sweep_isolates_panics_per_origin() {
        let g = diamond();
        let snap = TopologySnapshot::compile(&g);
        let origins: Vec<NodeId> = g.nodes().collect();
        let out = Simulation::over(&snap).threads(2).try_run_sweep_map(&origins, |ctx, o| {
            if o.0 == 3 {
                panic!("bad origin {o}");
            }
            ctx.run(o).reachable_count()
        });
        assert_eq!(out.len(), origins.len());
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                assert!(r.as_ref().unwrap_err().message.contains("bad origin"));
            } else {
                assert!(r.is_ok());
            }
        }
    }
}
