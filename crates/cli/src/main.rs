//! `flatnet` — command-line front end for the flat-Internet analyses.
//!
//! Works on real CAIDA AS-relationship files or on datasets produced by
//! `flatnet gen`. See `flatnet help` for the full command set.

mod commands;
mod opts;

use std::process::ExitCode;

const USAGE: &str = "\
flatnet — hierarchy-free reachability & friends (IMC 2020 reproduction)

USAGE:
  flatnet gen    --out DIR [--ases N] [--seed S] [--epoch 2020|2015]
      Generate a synthetic dataset: as-rel (public + truth), as2types,
      announced prefixes, per-AS users, and a scamper-style traceroute
      campaign.

  flatnet reach  --as-rel FILE --origin ASN[,ASN...]
                 [--tier1 ASN,.. --tier2 ASN,..] [--validate]
      Provider-free / Tier-1-free / hierarchy-free reachability for the
      given origins. Tiers are inferred (AS-Rank style) unless given.

  flatnet rank   --as-rel FILE [--top N] [--tier1 .. --tier2 ..]
                 [--validate]
      Rank all ASes by hierarchy-free reachability (Table-1 style).

  flatnet cone   --as-rel FILE [--top N]
      Rank all ASes by customer cone and transit degree.

  flatnet leak   --as-rel FILE --victim ASN [--leakers K]
                 [--lock none|t1|t12|global] [--tier1 .. --tier2 ..]
                 [--validate]
      Route-leak resilience CDF for a victim (§8).

  flatnet infer  --traces FILE --prefixes FILE --cloud ASN [--initial]
      Infer a cloud's neighbors from a scamper-style trace file and an
      announced-prefix dump (§4.1/§5). --initial uses the paper's first
      (flawed) methodology instead of the final one.

  flatnet collect  --as-rel FILE --out FILE.mrt [--monitors ASN,..]
                   [--origins N] [--seed S]
      Simulate route collectors over a topology and write their RIBs as
      an MRT TABLE_DUMP_V2 dump. Monitors default to the 30 largest
      transit ASes.

  flatnet relinfer --mrt FILE [--truth FILE] [--out FILE]
      Gao-style AS-relationship inference from an MRT RIB dump; with
      --truth, scores the result; with --out, writes the inferred
      topology as a CAIDA serial-1 file.

  flatnet dot    --as-rel FILE --focus ASN [--out FILE.dot]
      Graphviz export of an AS and its direct neighborhood.

  flatnet help
      This message.

Common flags take comma-separated AS numbers. All commands print text
tables to stdout and are deterministic.

Fault tolerance (every command that reads a file):
  --lenient        Skip malformed records instead of aborting; dropped
                   record counts are reported on stderr.
  --max-errors N   Cap on skipped records in lenient mode (implies
                   --lenient; default 1000). Parsing aborts once the
                   budget is exhausted.
  --validate       (reach/rank/leak) Run topology health checks before
                   measuring; critical findings (e.g. a broken Tier-1
                   clique) abort the run.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "gen" => commands::gen(rest),
        "reach" => commands::reach(rest),
        "rank" => commands::rank(rest),
        "cone" => commands::cone(rest),
        "leak" => commands::leak(rest),
        "infer" => commands::infer(rest),
        "collect" => commands::collect(rest),
        "relinfer" => commands::relinfer(rest),
        "dot" => commands::dot(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?} (try `flatnet help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("flatnet: {e}");
            ExitCode::FAILURE
        }
    }
}
