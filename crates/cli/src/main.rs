//! `flatnet` — command-line front end for the flat-Internet analyses.
//!
//! Works on real CAIDA AS-relationship files or on datasets produced by
//! `flatnet gen`. See `flatnet help` for the full command set.

mod commands;
mod opts;

use std::process::ExitCode;

const USAGE: &str = "\
flatnet — hierarchy-free reachability & friends (IMC 2020 reproduction)

USAGE:
  flatnet gen    --out DIR [--ases N] [--seed S] [--epoch 2020|2015]
      Generate a synthetic dataset: as-rel (public + truth), as2types,
      announced prefixes, per-AS users, and a scamper-style traceroute
      campaign.

  flatnet reach  --as-rel FILE --origin ASN[,ASN...]
                 [--tier1 ASN,.. --tier2 ASN,..] [--validate]
      Provider-free / Tier-1-free / hierarchy-free reachability for the
      given origins. Tiers are inferred (AS-Rank style) unless given.

  flatnet rank   --as-rel FILE [--top N] [--tier1 .. --tier2 ..]
                 [--validate]
      Rank all ASes by hierarchy-free reachability (Table-1 style).

  flatnet cone   --as-rel FILE [--top N]
      Rank all ASes by customer cone and transit degree.

  flatnet leak   --as-rel FILE --victim ASN [--leakers K]
                 [--lock none|t1|t12|global] [--tier1 .. --tier2 ..]
                 [--validate]
      Route-leak resilience CDF for a victim (§8).

  flatnet infer  --traces FILE --prefixes FILE --cloud ASN [--initial]
      Infer a cloud's neighbors from a scamper-style trace file and an
      announced-prefix dump (§4.1/§5). --initial uses the paper's first
      (flawed) methodology instead of the final one.

  flatnet collect  --as-rel FILE --out FILE.mrt [--monitors ASN,..]
                   [--origins N] [--seed S]
      Simulate route collectors over a topology and write their RIBs as
      an MRT TABLE_DUMP_V2 dump. Monitors default to the 30 largest
      transit ASes.

  flatnet relinfer --mrt FILE [--truth FILE] [--out FILE]
      Gao-style AS-relationship inference from an MRT RIB dump; with
      --truth, scores the result; with --out, writes the inferred
      topology as a CAIDA serial-1 file.

  flatnet dot    --as-rel FILE --focus ASN [--out FILE.dot]
      Graphviz export of an AS and its direct neighborhood.

  flatnet repro  [EXPERIMENT...] [--ases N] [--seed S] [--fast]
                 [--checkpoint DIR] [--threads N]
      Regenerate the paper's tables and figures on the synthetic
      substrate (see `flatnet repro --help` for the experiment list).

  flatnet serve  [--as-rel FILE | --ases N --seed S] [--addr HOST:PORT]
                 [--workers N] [--queue N] [--cache N] [--deadline-ms MS]
                 [--io-timeout-ms MS] [--keepalive-max N]
                 [--keepalive-idle-ms MS] [--store FILE]
                 [--lane-width auto|64|128|256] [--tier1 .. --tier2 ..]
      Run the query daemon: reachability/reliance/what-if answers over
      HTTP from a compiled snapshot. Endpoints: /v1/reachability,
      /v1/reliance (origin= or a comma-separated origins= batch),
      /v1/whatif/leak, /healthz, /metrics (add ?format=prom for
      Prometheus text), /debug/trace/recent, /debug/trace/slow?ms=N,
      /debug/queue, /admin/reload, /admin/shutdown. Every /v1 body is
      wrapped in the flatnet-serve/v1 envelope; responses carry an
      X-Flatnet-Trace-Id header. Connections are keep-alive by default:
      --keepalive-max (1024) bounds requests per connection,
      --keepalive-idle-ms (5000) closes quiet ones.
      Without --as-rel, serves a synthetic topology.
      With --store, warm-starts from the snapshot store when it is valid
      (skipping the compile), self-heals it when it is corrupt, and
      persists every successful reload to it.
      --shard-id I --shard-count N mark the daemon as one slice of a
      `flatnet router` fleet (surfaced in /healthz; normally set by the
      router when it spawns shards, not by hand).
      --lane-width picks the kernel lane width for origins= batches and
      cache warming (origins per bit-parallel block; default auto = 256
      on AVX2 hardware). Width never changes answers, only throughput.

  flatnet router [--shards N [--base-port P] | --shard-addrs A:P,..]
                 [--addr HOST:PORT] [--probe-ms MS]
                 [--upstream-timeout-ms MS] [--store FILE]
                 [--as-rel FILE | --ases N --seed S] [--tier1 .. --tier2 ..]
                 [--workers N] [--cache N] [--lane-width auto|64|128|256]
      Front a sharded serving tier: either spawn --shards N child
      `flatnet serve` processes (default 3, listening from --base-port
      8180 up, topology flags forwarded to each) or adopt running shards
      with --shard-addrs. Each shard owns a consistent-hash slice of the
      origin space; the router forwards single-origin /v1 queries to the
      owning shard and scatter-gathers origins= batches across shards
      over pooled keep-alive connections, merging the shard envelopes
      bit-identically. A dead shard 503s only its slice (error kind
      \"shard-unavailable\"; batches return a partial envelope flagged
      with a router.partial marker). POST /admin/reload rolls the fleet
      one shard at a time behind a health gate; /healthz, /metrics, and
      /debug/shards aggregate across shards. Trace ids propagate to
      shards via X-Flatnet-Trace-Id.

  flatnet snapshot save   --out FILE [--as-rel FILE | --ases N --seed S]
                          [--tier1 .. --tier2 ..]
  flatnet snapshot verify --store FILE [--deep]
  flatnet snapshot fuzz   --store FILE
      Manage crash-safe snapshot stores: `save` compiles a topology and
      writes it atomically; `verify` checksum-checks it (--deep also
      recompiles and compares bit-for-bit); `fuzz` injects the
      deterministic corruption corpus and fails unless every fault
      degrades to a typed error.

  flatnet metrics [--in PATH] [--prom]
      Render an obs snapshot — from a file written with `--metrics PATH`
      (or scraped from /metrics) when --in is given, else the live
      process registry — as a text table, or as Prometheus text
      exposition with --prom.

  flatnet trace top --in DUMP.json [--top N]
      Summarize a flatnet-trace/v1 dump (as returned by
      /debug/trace/recent or /debug/trace/slow): per-stage time
      breakdown, slowest origins, and the N slowest requests.

  flatnet bench propagate [--ases N] [--seed S] [--origins K]
                 [--threads N] [--lane-width auto|64|128|256] [--out PATH]
      Benchmark the batched propagation engine against the legacy
      one-shot path on a hierarchy-free reachability sweep, plus the
      bit-parallel kernel at 64 lanes and at the wide --lane-width
      (default auto = 256 on AVX2) on a dense full-reach sweep; writes a
      flatnet-bench-propagate/v1 JSON report (default
      BENCH_propagate.json).

  flatnet bench serve [--ases N] [--seed S] [--conc C] [--requests R]
                 [--pool P] [--workers W] [--pipeline D] [--batch B]
                 [--out PATH]
      Closed-loop load benchmark against an in-process `flatnet serve`
      daemon: three passes (close-per-request, keep-alive with
      --pipeline depth, origins= batch) with per-connection reuse stats
      and the keepalive-vs-close throughput ratio; writes a
      flatnet-bench-serve/v1 JSON report (default BENCH_serve.json).

  flatnet bench restart [--ases N] [--seed S] [--reps R] [--out PATH]
      Cold start (generate + compile) vs warm start (snapshot-store
      load) with a bit-identical-CSR check; writes a
      flatnet-bench-restart/v1 JSON report (default BENCH_restart.json).

  flatnet help
      This message.

Common flags take comma-separated AS numbers. All commands print text
tables to stdout and are deterministic.

Observability (any command):
  --metrics PATH   On exit, write a flatnet-obs/v2 JSON snapshot of the
                   process's spans, counters, and histograms to PATH.
  --log-level L    Stderr verbosity: error|warn|info|debug (default
                   info; $FLATNET_LOG is read first).
  --threads N      (repro) Worker threads for parallel sweeps; 0 = all
                   cores. Counter metrics are identical for any N.

Fault tolerance (every command that reads a file):
  --lenient        Skip malformed records instead of aborting; dropped
                   record counts are reported on stderr.
  --max-errors N   Cap on skipped records in lenient mode (implies
                   --lenient; default 1000). Parsing aborts once the
                   budget is exhausted.
  --validate       (reach/rank/leak) Run topology health checks before
                   measuring; critical findings (e.g. a broken Tier-1
                   clique) abort the run.";

/// Pulls the global `--metrics PATH` / `--log-level LEVEL` flags out of
/// the argument list (applying the log level immediately) so subcommand
/// parsers, which reject unknown flags, never see them. The `repro`
/// subcommand handles both itself, so its args pass through untouched.
fn strip_global_flags(args: Vec<String>) -> Result<(Vec<String>, Option<String>), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut metrics = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--metrics" => {
                metrics = Some(it.next().ok_or("--metrics requires a file path")?);
            }
            "--log-level" => {
                let name = it.next().ok_or("--log-level requires error|warn|info|debug")?;
                let level = flatnet_obs::log::parse_level(&name)
                    .ok_or_else(|| format!("bad value {name:?} for --log-level"))?;
                flatnet_obs::log::set_level(level);
            }
            _ => rest.push(a),
        }
    }
    Ok((rest, metrics))
}

fn main() -> ExitCode {
    flatnet_obs::log::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let repro = args.first().map(|c| c == "repro").unwrap_or(false);
    let (args, metrics) = if repro {
        (args, None)
    } else {
        match strip_global_flags(args) {
            Ok(split) => split,
            Err(e) => {
                flatnet_obs::error!("flatnet: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "gen" => commands::gen(rest),
        "reach" => commands::reach(rest),
        "rank" => commands::rank(rest),
        "cone" => commands::cone(rest),
        "leak" => commands::leak(rest),
        "infer" => commands::infer(rest),
        "collect" => commands::collect(rest),
        "relinfer" => commands::relinfer(rest),
        "dot" => commands::dot(rest),
        "serve" => commands::serve(rest),
        "router" => commands::router(rest),
        "snapshot" => commands::snapshot(rest),
        "metrics" => commands::metrics(rest),
        "trace" => commands::trace(rest),
        "bench" => match rest.split_first() {
            Some((sub, bench_rest)) if sub == "propagate" => {
                flatnet_bench::propbench::run(bench_rest)
            }
            Some((sub, bench_rest)) if sub == "serve" => {
                flatnet_bench::servebench::run(bench_rest)
            }
            Some((sub, bench_rest)) if sub == "restart" => {
                flatnet_bench::restartbench::run(bench_rest)
            }
            Some((sub, _)) => Err(format!(
                "unknown bench {sub:?} (try `bench propagate`, `bench serve`, or `bench restart`)"
            )),
            None => Err(
                "bench requires a subcommand (try `bench propagate`, `bench serve`, or `bench restart`)"
                    .to_string(),
            ),
        },
        "repro" => flatnet_bench::repro::run(rest).and_then(|failed| {
            if failed == 0 {
                Ok(())
            } else {
                Err(format!("{failed} experiment(s) failed"))
            }
        }),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?} (try `flatnet help`)")),
    };
    if let Some(path) = &metrics {
        let snap = flatnet_obs::snapshot();
        if let Err(e) = std::fs::write(path, snap.to_json()) {
            flatnet_obs::error!("flatnet: cannot write metrics {path}: {e}");
            return ExitCode::FAILURE;
        }
        flatnet_obs::info!("metrics snapshot written to {path}");
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            flatnet_obs::error!("flatnet: {e}");
            ExitCode::FAILURE
        }
    }
}
