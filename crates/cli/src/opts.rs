//! Minimal flag parsing (no external dependencies, per the workspace's
//! crate policy).

use flatnet_asgraph::AsId;
use std::collections::BTreeMap;

/// Parsed `--flag value` pairs plus boolean switches.
#[derive(Debug, Default)]
pub struct Opts {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Opts {
    /// Parses `args`. Flags start with `--`; `known_switches` are boolean,
    /// everything else must be in `known_values` and take a value.
    /// Positional arguments and unknown flags are rejected — a typo'd
    /// `--lenient` or `--validate` must not silently degrade to defaults.
    pub fn parse(
        args: &[String],
        known_switches: &[&str],
        known_values: &[&str],
    ) -> Result<Opts, String> {
        let mut opts = Opts::default();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {a:?}"));
            };
            if known_switches.contains(&name) {
                opts.switches.push(name.to_string());
                i += 1;
                continue;
            }
            if !known_values.contains(&name) {
                return Err(format!("unknown flag --{name} (see `flatnet help`)"));
            }
            let Some(value) = args.get(i + 1) else {
                return Err(format!("flag --{name} needs a value"));
            };
            if value.starts_with("--") {
                return Err(format!("flag --{name} needs a value, got {value:?}"));
            }
            opts.values.insert(name.to_string(), value.clone());
            i += 2;
        }
        Ok(opts)
    }

    /// A required string value.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.values
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// An optional string value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// An optional parsed number with a default.
    pub fn num_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad number {v:?}")),
        }
    }

    /// Whether a boolean switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// A comma-separated AS list, if present.
    pub fn as_list(&self, name: &str) -> Result<Option<Vec<AsId>>, String> {
        let Some(v) = self.values.get(name) else { return Ok(None) };
        let mut out = Vec::new();
        for part in v.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let asn: u32 = part
                .strip_prefix("AS")
                .unwrap_or(part)
                .parse()
                .map_err(|_| format!("--{name}: bad ASN {part:?}"))?;
            out.push(AsId(asn));
        }
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let o = Opts::parse(
            &argv(&["--as-rel", "f.txt", "--initial", "--top", "5"]),
            &["initial"],
            &["as-rel", "top"],
        )
        .unwrap();
        assert_eq!(o.required("as-rel").unwrap(), "f.txt");
        assert!(o.switch("initial"));
        assert_eq!(o.num_or("top", 20usize).unwrap(), 5);
        assert_eq!(o.num_or("missing", 7u64).unwrap(), 7);
        assert!(o.get("nope").is_none());
    }

    #[test]
    fn as_lists() {
        let o = Opts::parse(&argv(&["--tier1", "3356, AS174,1299"]), &[], &["tier1"]).unwrap();
        let t1 = o.as_list("tier1").unwrap().unwrap();
        assert_eq!(t1, vec![AsId(3356), AsId(174), AsId(1299)]);
        assert_eq!(o.as_list("tier2").unwrap(), None);
        let bad = Opts::parse(&argv(&["--tier1", "x"]), &[], &["tier1"]).unwrap();
        assert!(bad.as_list("tier1").is_err());
    }

    #[test]
    fn rejects_malformed() {
        let any = &["flag", "a", "top"][..];
        assert!(Opts::parse(&argv(&["positional"]), &[], any).is_err());
        assert!(Opts::parse(&argv(&["--flag"]), &[], any).is_err());
        assert!(Opts::parse(&argv(&["--a", "--b"]), &[], any).is_err());
        let o = Opts::parse(&argv(&["--top", "x"]), &[], any).unwrap();
        assert!(o.num_or("top", 1usize).is_err());
        assert!(o.required("missing").is_err());
    }

    #[test]
    fn rejects_unknown_flags() {
        let err = Opts::parse(&argv(&["--bogus", "x"]), &["lenient"], &["as-rel"]).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
        // A typo'd switch is caught, not silently treated as a value flag.
        let err =
            Opts::parse(&argv(&["--leniant"]), &["lenient"], &["as-rel"]).unwrap_err();
        assert!(err.contains("--leniant"), "{err}");
    }
}
