//! The `flatnet` subcommand implementations.

use crate::opts::Opts;
use flatnet_asgraph::caida;
use flatnet_asgraph::graph::RelConflict;
use flatnet_asgraph::ingest::{ParseDiagnostics, ParseOptions};
use flatnet_asgraph::{validate_topology, AsGraph, AsId, Tiers, ValidateOptions};
use flatnet_core::leaks::{leak_cdf, Announce, Locking};
use flatnet_core::reachability::{hierarchy_free_all, rank_by_hierarchy_free, reachability_profile};
use flatnet_core::report::{thousands, TextTable};
use flatnet_netgen::{generate, Epoch, NetGenConfig};
use flatnet_prefixdb::{AnnouncedDb, PeeringDb, Resolver, WhoisDb};
use flatnet_tracesim::{infer_neighbors, run_campaign, scamper, CampaignOptions, Methodology};
use flatnet_asgraph::cone::customer_cone_sizes;
use std::fs;
use std::path::Path;

/// Parse strictness from the shared `--lenient` / `--max-errors` flags
/// (`--max-errors N` implies `--lenient`).
fn parse_mode(opts: &Opts) -> Result<ParseOptions, String> {
    let mut mode =
        if opts.switch("lenient") { ParseOptions::lenient() } else { ParseOptions::strict() };
    if let Some(v) = opts.get("max-errors") {
        let n: usize =
            v.parse().map_err(|_| format!("--max-errors: bad value {v:?} (want a count)"))?;
        mode = ParseOptions::lenient().with_max_errors(n);
    }
    Ok(mode)
}

/// Surfaces what a lenient parse dropped.
fn note_diag(path: &str, diag: &ParseDiagnostics) {
    if !diag.is_clean() {
        flatnet_obs::warn!("{path}: {}", diag.summary());
    }
}

/// Loads an AS-relationship file, accepting either CAIDA format.
fn load_graph(path: &str, mode: &ParseOptions) -> Result<AsGraph, String> {
    load_graph_full(path, mode).map(|(g, _)| g)
}

/// As [`load_graph`], also returning the relationship conflicts seen while
/// building (for `--validate`).
fn load_graph_full(
    path: &str,
    mode: &ParseOptions,
) -> Result<(AsGraph, Vec<RelConflict>), String> {
    let data = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    // Sniff the format from the first data line: serial-2 has 4 fields.
    // (Trying one format and falling back would let a lenient parse of the
    // wrong format "succeed" by dropping every line.)
    let fields = data
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.split('|').count())
        .unwrap_or(3);
    let result = if fields == 4 {
        caida::parse_serial2_with(data.as_bytes(), mode)
    } else {
        caida::parse_serial1_with(data.as_bytes(), mode)
    };
    let (b, diag) = result.map_err(|e| format!("{path}: not a CAIDA as-rel file: {e}"))?;
    note_diag(path, &diag);
    let conflicts = b.conflicts().to_vec();
    Ok((b.build(), conflicts))
}

/// `--validate`: pre-flight topology health checks; critical findings
/// abort the command.
fn run_validation(g: &AsGraph, tiers: &Tiers, conflicts: &[RelConflict]) -> Result<(), String> {
    let t1: Vec<AsId> = tiers.tier1().iter().map(|&n| g.asn(n)).collect();
    let t2: Vec<AsId> = tiers.tier2().iter().map(|&n| g.asn(n)).collect();
    let report = validate_topology(g, &t1, &t2, conflicts, &ValidateOptions::default());
    flatnet_obs::info!("{}", report.render());
    if !report.is_usable() {
        return Err("topology failed pre-flight health checks (critical findings above)".into());
    }
    Ok(())
}

/// Resolves tier sets: explicit lists when given, AS-Rank-style inference
/// otherwise.
fn tiers_for(g: &AsGraph, opts: &Opts) -> Result<Tiers, String> {
    let t1 = opts.as_list("tier1")?;
    let t2 = opts.as_list("tier2")?;
    match (t1, t2) {
        (Some(t1), t2) => Ok(Tiers::from_lists(g, &t1, &t2.unwrap_or_default())),
        (None, Some(_)) => Err("--tier2 requires --tier1".into()),
        (None, None) => {
            let tiers = flatnet_asgraph::tiers::infer_tiers(g, 32, 28);
            flatnet_obs::info!(
                "inferred {} Tier-1s and {} Tier-2s (pass --tier1/--tier2 to override)",
                tiers.tier1().len(),
                tiers.tier2().len()
            );
            Ok(tiers)
        }
    }
}

/// `flatnet gen` — write a full synthetic dataset to a directory.
pub fn gen(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &[], &["out", "ases", "seed", "trace-sample", "epoch"])?;
    let out = opts.required("out")?.to_string();
    let n_ases: usize = opts.num_or("ases", 2000)?;
    let seed: u64 = opts.num_or("seed", 2020)?;
    let trace_sample: f64 = opts.num_or("trace-sample", 0.5)?;
    let epoch = match opts.get("epoch").unwrap_or("2020") {
        "2020" => Epoch::Y2020,
        "2015" => Epoch::Y2015,
        other => return Err(format!("--epoch must be 2020 or 2015, got {other:?}")),
    };
    let cfg = match epoch {
        Epoch::Y2020 => NetGenConfig::paper_2020(n_ases, seed),
        Epoch::Y2015 => NetGenConfig::paper_2015(n_ases, seed),
    };
    let net = generate(&cfg);
    let dir = Path::new(&out);
    flatnet_netgen::write_dataset(&net, dir)?;
    let campaign = run_campaign(
        &net,
        &CampaignOptions { seed, dest_sample: trace_sample, ..Default::default() },
    );
    fs::write(dir.join("traces.txt"), scamper::write_traces(&campaign.traces))
        .map_err(|e| format!("traces.txt: {e}"))?;
    fs::write(dir.join("traces.warts"), flatnet_tracesim::warts::write_warts(&campaign.traces))
        .map_err(|e| format!("traces.warts: {e}"))?;

    println!(
        "wrote dataset to {out}: {} ASes, {} public links, {} truth links, {} traces",
        net.truth.len(),
        net.public.edge_count(),
        net.truth.edge_count(),
        campaign.len()
    );
    Ok(())
}

/// `flatnet reach` — reachability profile for given origins.
pub fn reach(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &["lenient", "validate"],
        &["as-rel", "origin", "tier1", "tier2", "max-errors"],
    )?;
    let mode = parse_mode(&opts)?;
    let (g, conflicts) = load_graph_full(opts.required("as-rel")?, &mode)?;
    let origins = opts
        .as_list("origin")?
        .ok_or("missing required flag --origin")?;
    let tiers = tiers_for(&g, &opts)?;
    if opts.switch("validate") {
        run_validation(&g, &tiers, &conflicts)?;
    }
    let profile = reachability_profile(&g, &tiers, &origins);
    if profile.is_empty() {
        return Err("none of the given origins exist in the topology".into());
    }
    let mut t = TextTable::new(["origin", "provider-free", "tier1-free", "hierarchy-free", "hf %"]);
    for r in &profile {
        t.row([
            r.asn.to_string(),
            thousands(r.provider_free as u64),
            thousands(r.tier1_free as u64),
            thousands(r.hierarchy_free as u64),
            format!("{:.1}%", r.hierarchy_free_pct()),
        ]);
    }
    print!("{}", t.render());
    Ok(())
}

/// `flatnet rank` — Table-1-style ranking.
pub fn rank(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &["lenient", "validate"],
        &["as-rel", "top", "tier1", "tier2", "max-errors"],
    )?;
    let mode = parse_mode(&opts)?;
    let (g, conflicts) = load_graph_full(opts.required("as-rel")?, &mode)?;
    let top: usize = opts.num_or("top", 20)?;
    let tiers = tiers_for(&g, &opts)?;
    if opts.switch("validate") {
        run_validation(&g, &tiers, &conflicts)?;
    }
    let hfr = hierarchy_free_all(&g, &tiers);
    let ranked = rank_by_hierarchy_free(&g, &hfr);
    let mut t = TextTable::new(["#", "origin", "hierarchy-free reach", "%"]);
    for r in ranked.iter().take(top) {
        t.row([
            r.rank.to_string(),
            r.asn.to_string(),
            thousands(r.reach as u64),
            format!("{:.1}%", r.pct),
        ]);
    }
    print!("{}", t.render());
    Ok(())
}

/// `flatnet cone` — customer-cone / transit-degree ranking.
pub fn cone(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["lenient"], &["as-rel", "top", "max-errors"])?;
    let mode = parse_mode(&opts)?;
    let g = load_graph(opts.required("as-rel")?, &mode)?;
    let top: usize = opts.num_or("top", 20)?;
    let cones = customer_cone_sizes(&g);
    let mut order: Vec<_> = g.nodes().collect();
    order.sort_by_key(|&n| (std::cmp::Reverse(cones[n.idx()]), g.asn(n)));
    let mut t = TextTable::new(["#", "origin", "customer cone", "transit degree", "node degree"]);
    for (i, &n) in order.iter().take(top).enumerate() {
        t.row([
            (i + 1).to_string(),
            g.asn(n).to_string(),
            thousands(cones[n.idx()] as u64),
            flatnet_asgraph::cone::transit_degree(&g, n).to_string(),
            g.degree(n).to_string(),
        ]);
    }
    print!("{}", t.render());
    Ok(())
}

/// `flatnet leak` — §8 resilience CDF.
pub fn leak(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &["lenient", "validate"],
        &["as-rel", "victim", "leakers", "seed", "lock", "tier1", "tier2", "max-errors"],
    )?;
    let mode = parse_mode(&opts)?;
    let (g, conflicts) = load_graph_full(opts.required("as-rel")?, &mode)?;
    let victim = opts
        .as_list("victim")?
        .and_then(|v| v.first().copied())
        .ok_or("missing required flag --victim")?;
    let leakers: usize = opts.num_or("leakers", 200)?;
    let seed: u64 = opts.num_or("seed", 1)?;
    let locking = match opts.get("lock").unwrap_or("none") {
        "none" => Locking::None,
        "t1" => Locking::Tier1,
        "t12" => Locking::Tier12,
        "global" => Locking::Global,
        other => return Err(format!("--lock must be none|t1|t12|global, got {other:?}")),
    };
    let tiers = tiers_for(&g, &opts)?;
    if opts.switch("validate") {
        run_validation(&g, &tiers, &conflicts)?;
    }
    let cdf = leak_cdf(&g, &tiers, victim, Announce::ToAll, locking, leakers, seed, None)
        .ok_or_else(|| format!("{victim} is not in the topology"))?;
    println!(
        "victim {victim}, {} leak simulations, locking: {}",
        cdf.fractions.len(),
        locking.name()
    );
    println!(
        "ASes detoured: median {:.1}%  p90 {:.1}%  worst {:.1}%",
        100.0 * cdf.median(),
        100.0 * cdf.percentile(90.0),
        100.0 * cdf.max()
    );
    Ok(())
}

/// `flatnet infer` — §4.1 neighbor inference from a trace file.
pub fn infer(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &["initial", "lenient"],
        &["traces", "prefixes", "cloud", "max-errors"],
    )?;
    let mode = parse_mode(&opts)?;
    let traces_path = opts.required("traces")?;
    let prefixes_path = opts.required("prefixes")?;
    let cloud = opts
        .as_list("cloud")?
        .and_then(|v| v.first().copied())
        .ok_or("missing required flag --cloud")?;
    // Sniff the format: warts records start with the 0x1205 magic.
    let raw = fs::read(traces_path).map_err(|e| format!("{traces_path}: {e}"))?;
    let traces = if raw.starts_with(&[0x12, 0x05]) {
        let (traces, diag) =
            flatnet_tracesim::warts::parse_warts_with(&raw, &mode).map_err(|e| e.to_string())?;
        note_diag(traces_path, &diag);
        traces
    } else {
        let text = String::from_utf8(raw).map_err(|_| format!("{traces_path}: not UTF-8"))?;
        let (traces, diag) = scamper::parse_traces_with(&text, &mode)?;
        note_diag(traces_path, &diag);
        traces
    };
    let prefix_text =
        fs::read_to_string(prefixes_path).map_err(|e| format!("{prefixes_path}: {e}"))?;
    let (announced, diag) = AnnouncedDb::parse_with(&prefix_text, &mode)?;
    note_diag(prefixes_path, &diag);
    let resolver = Resolver::new(PeeringDb::new(), announced, WhoisDb::new());
    let methodology = if opts.switch("initial") {
        Methodology::initial()
    } else {
        Methodology::final_methodology()
    };
    let neighbors = infer_neighbors(traces.iter(), &resolver, &methodology, cloud);
    println!("# {} neighbors inferred for {cloud} from {} traces", neighbors.len(), traces.len());
    for n in &neighbors {
        println!("{}", n.0);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    /// A unique temp directory per test.
    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("flatnet-cli-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn gen_then_analyze_roundtrip() {
        let dir = tmpdir("gen");
        let out = dir.to_str().unwrap().to_string();
        gen(&argv(&["--out", &out, "--ases", "300", "--seed", "7", "--trace-sample", "0.3"]))
            .unwrap();
        for f in ["as-rel.txt", "as-rel-truth.txt", "as2types.txt", "prefixes.txt", "users.txt", "traces.txt", "traces.warts", "tiers.txt"] {
            assert!(dir.join(f).exists(), "{f} missing");
        }
        let rel = dir.join("as-rel-truth.txt");
        let rel_s = rel.to_str().unwrap();
        // reach over the generated truth file for Google.
        reach(&argv(&["--as-rel", rel_s, "--origin", "15169"])).unwrap();
        // rank and cone run end to end.
        rank(&argv(&["--as-rel", rel_s, "--top", "5"])).unwrap();
        cone(&argv(&["--as-rel", rel_s, "--top", "5"])).unwrap();
        // leak with explicit tiny leaker count.
        leak(&argv(&["--as-rel", rel_s, "--victim", "15169", "--leakers", "5", "--lock", "t1"]))
            .unwrap();
        // infer against the generated traces + prefixes.
        let prefixes = dir.join("prefixes.txt");
        for traces in ["traces.txt", "traces.warts"] {
            infer(&argv(&[
                "--traces",
                dir.join(traces).to_str().unwrap(),
                "--prefixes",
                prefixes.to_str().unwrap(),
                "--cloud",
                "15169",
            ]))
            .unwrap();
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_are_reported() {
        let strict = ParseOptions::strict();
        assert!(load_graph("/nonexistent/file", &strict).is_err());
        assert!(reach(&argv(&["--as-rel", "/nonexistent"])).is_err());
        assert!(gen(&argv(&["--ases", "10"])).is_err()); // missing --out
        assert!(leak(&argv(&["--as-rel", "/nonexistent", "--victim", "1"])).is_err());
        let dir = tmpdir("err");
        let f = dir.join("bad.txt");
        fs::write(&f, "not a caida file\n").unwrap();
        assert!(load_graph(f.to_str().unwrap(), &strict).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lenient_flag_tolerates_bad_lines() {
        let dir = tmpdir("lenient");
        let f = dir.join("rel.txt");
        // One garbage line amid valid serial-2 records.
        fs::write(&f, "1|2|-1|bgp\ngarbage line here\n2|3|-1|bgp\n3|4|0|bgp\n").unwrap();
        let fs_ = f.to_str().unwrap();
        // Strict load fails...
        assert!(reach(&argv(&["--as-rel", fs_, "--origin", "4", "--tier1", "1"])).is_err());
        // ...lenient succeeds and still finds the origin.
        reach(&argv(&["--as-rel", fs_, "--origin", "4", "--tier1", "1", "--lenient"])).unwrap();
        // --max-errors implies lenient; a zero budget still aborts.
        assert!(reach(&argv(&[
            "--as-rel", fs_, "--origin", "4", "--tier1", "1", "--max-errors", "0"
        ]))
        .is_err());
        reach(&argv(&["--as-rel", fs_, "--origin", "4", "--tier1", "1", "--max-errors", "5"]))
            .unwrap();
        // Bad flag values name the offending value.
        let err = reach(&argv(&[
            "--as-rel", fs_, "--origin", "4", "--tier1", "1", "--max-errors", "lots"
        ]))
        .unwrap_err();
        assert!(err.contains("\"lots\""), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_flag_gates_on_health() {
        let dir = tmpdir("validate");
        let f = dir.join("rel.txt");
        // 1 and 2 are a peered Tier-1 clique; 3 is their customer.
        fs::write(&f, "1|2|0|bgp\n1|3|-1|bgp\n2|3|-1|bgp\n").unwrap();
        let fs_ = f.to_str().unwrap();
        reach(&argv(&[
            "--as-rel", fs_, "--origin", "3", "--tier1", "1,2", "--validate",
        ]))
        .unwrap();
        // Declaring the customer a Tier-1 breaks the clique: 3 does not peer
        // with anyone, so --validate must refuse to run the measurement.
        let err = reach(&argv(&[
            "--as-rel", fs_, "--origin", "3", "--tier1", "1,2,3", "--validate",
        ]))
        .unwrap_err();
        assert!(err.contains("health"), "{err}");
        // Same topology without --validate still runs.
        reach(&argv(&["--as-rel", fs_, "--origin", "3", "--tier1", "1,2,3"])).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiers_flags() {
        let dir = tmpdir("tiers");
        let f = dir.join("rel.txt");
        fs::write(&f, "1|2|-1|bgp\n2|3|-1|bgp\n").unwrap();
        let fs_ = f.to_str().unwrap();
        // Explicit tiers.
        reach(&argv(&["--as-rel", fs_, "--origin", "3", "--tier1", "1", "--tier2", "2"])).unwrap();
        // tier2 without tier1 is an error.
        assert!(reach(&argv(&["--as-rel", fs_, "--origin", "3", "--tier2", "2"])).is_err());
        // Unknown origin.
        assert!(reach(&argv(&["--as-rel", fs_, "--origin", "99"])).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn leak_lock_validation() {
        let dir = tmpdir("lock");
        let f = dir.join("rel.txt");
        fs::write(&f, "1|2|-1|bgp\n1|3|-1|bgp\n").unwrap();
        let fs_ = f.to_str().unwrap();
        assert!(leak(&argv(&["--as-rel", fs_, "--victim", "2", "--lock", "bogus"])).is_err());
        leak(&argv(&["--as-rel", fs_, "--victim", "2", "--leakers", "2"])).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }
}

/// `flatnet collect` — simulate route collectors and write MRT.
pub fn collect(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &["lenient"],
        &["as-rel", "out", "origins", "seed", "monitors", "max-errors"],
    )?;
    let mode = parse_mode(&opts)?;
    let g = load_graph(opts.required("as-rel")?, &mode)?;
    let out = opts.required("out")?.to_string();
    let n_origins: usize = opts.num_or("origins", g.len())?;
    let seed: u64 = opts.num_or("seed", 1)?;
    let monitors: Vec<_> = match opts.as_list("monitors")? {
        Some(list) => list
            .iter()
            .map(|&a| g.index_of(a).ok_or_else(|| format!("monitor {a} not in topology")))
            .collect::<Result<Vec<_>, _>>()?,
        None => {
            // Default: the 30 largest transit ASes (RouteViews peers are
            // overwhelmingly transit networks).
            let cones = customer_cone_sizes(&g);
            let mut order: Vec<_> = g.nodes().collect();
            order.sort_by_key(|&n| (std::cmp::Reverse(cones[n.idx()]), g.asn(n)));
            order.into_iter().take(30).collect()
        }
    };
    // Deterministic origin sample.
    let mut origins: Vec<_> = g.nodes().collect();
    if n_origins < origins.len() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for i in (1..origins.len()).rev() {
            origins.swap(i, rng.gen_range(0..=i));
        }
        origins.truncate(n_origins);
        origins.sort_unstable();
    }
    let ribs = flatnet_bgpsim::collect_ribs(&g, &monitors, &origins);
    // Synthesize one /20 per origin for the MRT prefix field.
    let mrt = flatnet_mrt::from_rib_entries(&ribs, |origin| {
        Some(flatnet_prefixdb::Ipv4Prefix::new(
            std::net::Ipv4Addr::from(0x0100_0000u32.wrapping_add(origin.0 << 12)),
            20,
        ))
    });
    let bytes = flatnet_mrt::write_mrt(&mrt, 1_600_000_000);
    fs::write(&out, &bytes).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "wrote {}: {} monitors, {} RIB entries, {} bytes",
        out,
        monitors.len(),
        ribs.len(),
        bytes.len()
    );
    Ok(())
}

/// `flatnet relinfer` — Gao inference from an MRT dump.
pub fn relinfer(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["lenient"], &["mrt", "truth", "out", "max-errors"])?;
    let mode = parse_mode(&opts)?;
    let path = opts.required("mrt")?;
    let bytes = fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let (rib, diag) = flatnet_mrt::parse_mrt_with(&bytes, &mode).map_err(|e| e.to_string())?;
    note_diag(path, &diag);
    let entries = flatnet_mrt::to_rib_entries(&rib);
    let paths: Vec<Vec<AsId>> = entries.iter().map(|e| e.path.clone()).collect();
    let inferred = flatnet_asgraph::infer_relationships(&paths, 60.0);
    println!(
        "{} paths -> {} links observed: {} inferred p2c, {} inferred p2p",
        paths.len(),
        inferred.observed_links,
        inferred.inferred_p2c,
        inferred.inferred_p2p
    );
    if let Some(truth_path) = opts.get("truth") {
        let truth = load_graph(truth_path, &mode)?;
        let acc = flatnet_asgraph::score_inference(&inferred.graph, &truth);
        println!(
            "vs truth: c2p accuracy {:.1}% ({} correct / {} flipped / {} as-p2p), p2p recall {:.1}%, p2p invisible {:.1}%",
            100.0 * acc.c2p_accuracy(),
            acc.c2p_correct,
            acc.c2p_flipped,
            acc.c2p_as_p2p,
            100.0 * acc.p2p_recall(),
            100.0 * acc.p2p_invisible_fraction()
        );
    }
    if let Some(out) = opts.get("out") {
        fs::write(out, caida::write_serial1(&inferred.graph)).map_err(|e| format!("{out}: {e}"))?;
        println!("wrote inferred topology to {out}");
    }
    Ok(())
}

#[cfg(test)]
mod mrt_tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn collect_then_relinfer_roundtrip() {
        let dir = std::env::temp_dir().join(format!("flatnet-cli-mrt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let out = dir.to_str().unwrap().to_string();
        gen(&argv(&["--out", &out, "--ases", "250", "--seed", "9", "--trace-sample", "0.1"])).unwrap();
        let rel = dir.join("as-rel-truth.txt");
        let mrt = dir.join("ribs.mrt");
        collect(&argv(&[
            "--as-rel",
            rel.to_str().unwrap(),
            "--out",
            mrt.to_str().unwrap(),
            "--origins",
            "120",
        ]))
        .unwrap();
        assert!(mrt.exists());
        let inferred = dir.join("inferred.txt");
        relinfer(&argv(&[
            "--mrt",
            mrt.to_str().unwrap(),
            "--truth",
            rel.to_str().unwrap(),
            "--out",
            inferred.to_str().unwrap(),
        ]))
        .unwrap();
        // The inferred file is a loadable serial-1 topology.
        let g = load_graph(inferred.to_str().unwrap(), &ParseOptions::strict()).unwrap();
        assert!(g.edge_count() > 100);
        // Explicit monitor list and error paths.
        collect(&argv(&[
            "--as-rel",
            rel.to_str().unwrap(),
            "--out",
            mrt.to_str().unwrap(),
            "--monitors",
            "3356,174",
        ]))
        .unwrap();
        assert!(collect(&argv(&[
            "--as-rel",
            rel.to_str().unwrap(),
            "--out",
            mrt.to_str().unwrap(),
            "--monitors",
            "999999",
        ]))
        .is_err());
        assert!(relinfer(&argv(&["--mrt", "/nonexistent"])).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}

/// `flatnet dot` — Graphviz export of an AS neighborhood.
pub fn dot(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["lenient"], &["as-rel", "focus", "out", "max-errors"])?;
    let mode = parse_mode(&opts)?;
    let g = load_graph(opts.required("as-rel")?, &mode)?;
    let focus = opts
        .as_list("focus")?
        .and_then(|v| v.first().copied())
        .ok_or("missing required flag --focus")?;
    let n = g.index_of(focus).ok_or_else(|| format!("{focus} not in topology"))?;
    // The focus AS plus its direct neighborhood.
    let mut include = vec![focus];
    for (m, _) in g.neighbors(n) {
        include.push(g.asn(m));
    }
    let dot_opts = flatnet_asgraph::dot::DotOptions {
        labels: Default::default(),
        highlight: vec![focus],
        restrict_to: Some(include),
    };
    let rendered = flatnet_asgraph::dot::to_dot(&g, &dot_opts);
    match opts.get("out") {
        Some(path) => {
            fs::write(path, rendered).map_err(|e| format!("{path}: {e}"))?;
            println!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

/// `flatnet serve`: run the query daemon until `/admin/shutdown`.
pub fn serve(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &["lenient"],
        &[
            "addr",
            "as-rel",
            "ases",
            "seed",
            "workers",
            "queue",
            "cache",
            "deadline-ms",
            "warm",
            "io-timeout-ms",
            "keepalive-max",
            "keepalive-idle-ms",
            "store",
            "tier1",
            "tier2",
            "shard-id",
            "shard-count",
            "lane-width",
        ],
    )?;
    let shard = match (opts.get("shard-id"), opts.get("shard-count")) {
        (None, None) => None,
        (Some(id), Some(count)) => {
            let id: u32 = id.parse().map_err(|_| format!("--shard-id: bad number {id:?}"))?;
            let count: u32 =
                count.parse().map_err(|_| format!("--shard-count: bad number {count:?}"))?;
            if count == 0 || id >= count {
                return Err(format!("--shard-id {id} out of range for --shard-count {count}"));
            }
            Some((id, count))
        }
        _ => return Err("--shard-id and --shard-count go together".into()),
    };
    let source = match opts.get("as-rel") {
        Some(path) => flatnet_serve::TopologySource::CaidaFile {
            path: path.to_string(),
            tier1: opts.as_list("tier1")?.unwrap_or_default(),
            tier2: opts.as_list("tier2")?.unwrap_or_default(),
            lenient: opts.switch("lenient"),
        },
        None => flatnet_serve::TopologySource::Generated {
            ases: opts.num_or("ases", 4000usize)?,
            seed: opts.num_or("seed", 2020u64)?,
        },
    };
    let cfg = flatnet_serve::ServeConfig {
        addr: opts.get("addr").unwrap_or("127.0.0.1:8080").to_string(),
        workers: opts.num_or("workers", 0usize)?,
        queue_cap: opts.num_or("queue", 256usize)?,
        cache_cap: opts.num_or("cache", 4096usize)?,
        deadline_ms: opts.num_or("deadline-ms", 5000u64)?,
        warm: opts.num_or("warm", 0usize)?,
        io_timeout_ms: opts.num_or("io-timeout-ms", 10_000u64)?,
        keepalive_max: opts.num_or("keepalive-max", 1024u64)?,
        keepalive_idle_ms: opts.num_or("keepalive-idle-ms", 5000u64)?,
        store: opts.get("store").map(str::to_string),
        lane_width: flatnet_bgpsim::LaneWidth::parse(opts.get("lane-width").unwrap_or("auto"))?,
        shard,
        source,
    };
    flatnet_serve::serve(cfg).map_err(String::from)
}

/// One blocking HTTP round trip with no client machinery — enough for
/// readiness polling and shutdown nudges against our own daemons.
fn tiny_http(addr: &str, method: &str, path: &str) -> std::io::Result<u16> {
    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5))).ok();
    stream.set_write_timeout(Some(std::time::Duration::from_secs(5))).ok();
    let mut reader = BufReader::new(stream);
    reader.get_mut().write_all(
        format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
            .as_bytes(),
    )?;
    let mut line = String::new();
    reader.read_line(&mut line)?;
    line.split_whitespace().nth(1).and_then(|c| c.parse().ok()).ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad status line {line:?}"))
    })
}

/// Polls a shard's `/healthz` until it answers 200 (compiling a large
/// topology can take a while, hence the generous budget).
fn wait_shard_ready(addr: &str, budget: std::time::Duration) -> Result<(), String> {
    let deadline = std::time::Instant::now() + budget;
    loop {
        match tiny_http(addr, "GET", "/healthz") {
            Ok(200) => return Ok(()),
            Ok(status) => {
                if std::time::Instant::now() >= deadline {
                    return Err(format!("last /healthz status: {status}"));
                }
            }
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    return Err(format!("last error: {e}"));
                }
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
}

/// `flatnet router`: the sharded serving tier. Either spawns `--shards N`
/// child `flatnet serve` processes (one consistent-hash slice each, all
/// from the same topology flags) or adopts externally managed shards via
/// `--shard-addrs`, then fronts them with the origin-hash scatter-gather
/// router until `POST /admin/shutdown`.
pub fn router(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &["lenient"],
        &[
            "addr",
            "shards",
            "shard-addrs",
            "base-port",
            "store",
            "as-rel",
            "ases",
            "seed",
            "tier1",
            "tier2",
            "workers",
            "cache",
            "lane-width",
            "probe-ms",
            "upstream-timeout-ms",
        ],
    )?;
    let addr = opts.get("addr").unwrap_or("127.0.0.1:8070").to_string();

    let mut children: Vec<std::process::Child> = Vec::new();
    let shard_addrs: Vec<String> = if let Some(list) = opts.get("shard-addrs") {
        if opts.get("shards").is_some() {
            return Err("--shard-addrs (adopt) and --shards (spawn) are mutually exclusive".into());
        }
        let addrs: Vec<String> =
            list.split(',').map(str::trim).filter(|s| !s.is_empty()).map(str::to_string).collect();
        if addrs.is_empty() {
            return Err("--shard-addrs: no addresses given".into());
        }
        addrs
    } else {
        let n: u32 = opts.num_or("shards", 3u32)?;
        if n == 0 {
            return Err("--shards must be at least 1".into());
        }
        let base: u16 = opts.num_or("base-port", 8180u16)?;
        let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
        let mut common: Vec<String> = Vec::new();
        for flag in
            ["store", "as-rel", "ases", "seed", "tier1", "tier2", "workers", "cache", "lane-width"]
        {
            if let Some(v) = opts.get(flag) {
                common.push(format!("--{flag}"));
                common.push(v.to_string());
            }
        }
        if opts.get("workers").is_none() {
            // A serve worker stays bound to its connection for the
            // connection's whole life, so a shard needs at least as many
            // workers as the router holds sockets to it at once — pooled
            // data-plane connections plus a health probe plus a rolling
            // reload — or the excess connections starve to the queue
            // deadline. Workers beyond the core count are nearly free
            // (they park in `fill_buf`), so spawned shards get a
            // generous floor rather than serve's all-cores default.
            let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
            common.push("--workers".into());
            common.push(cores.max(8).to_string());
        }
        if opts.switch("lenient") {
            common.push("--lenient".into());
        }
        let addrs: Vec<String> = (0..n)
            .map(|i| {
                base.checked_add(i as u16)
                    .map(|p| format!("127.0.0.1:{p}"))
                    .ok_or_else(|| format!("--base-port {base} + {n} shards overflows a port"))
            })
            .collect::<Result<_, _>>()?;
        for (i, shard_addr) in addrs.iter().enumerate() {
            let child = std::process::Command::new(&exe)
                .arg("serve")
                .args(["--addr", shard_addr])
                .args(["--shard-id", &i.to_string()])
                .args(["--shard-count", &n.to_string()])
                .args(&common)
                .spawn()
                .map_err(|e| format!("spawning shard {i}: {e}"))?;
            flatnet_obs::info!("spawned shard {i} (pid {}) on {shard_addr}", child.id());
            children.push(child);
        }
        for (i, shard_addr) in addrs.iter().enumerate() {
            if let Err(e) = wait_shard_ready(shard_addr, std::time::Duration::from_secs(120)) {
                for c in &mut children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return Err(format!("shard {i} on {shard_addr} never became healthy ({e})"));
            }
        }
        addrs
    };

    let cfg = flatnet_router::RouterConfig {
        addr,
        shard_addrs: shard_addrs.clone(),
        shard_pids: children.iter().map(std::process::Child::id).collect(),
        probe_interval_ms: opts.num_or("probe-ms", 200u64)?,
        upstream_timeout_ms: opts.num_or("upstream-timeout-ms", 10_000u64)?,
        ..flatnet_router::RouterConfig::default()
    };
    let router = flatnet_router::Router::start(cfg)
        .map_err(|e| format!("router failed to start: {e}"))?;
    router.wait();

    // The router was told to shut down; take the spawned shards with it.
    // Adopted shards (--shard-addrs) stay up — they are not ours.
    for (child, shard_addr) in children.iter_mut().zip(&shard_addrs) {
        let _ = tiny_http(shard_addr, "POST", "/admin/shutdown");
        let _ = child.wait();
    }
    Ok(())
}

/// `flatnet snapshot save|verify|fuzz`: the crash-safe snapshot store.
pub fn snapshot(args: &[String]) -> Result<(), String> {
    let Some((sub, rest)) = args.split_first() else {
        return Err("snapshot requires a subcommand (save|verify|fuzz)".into());
    };
    match sub.as_str() {
        "save" => snapshot_save(rest),
        "verify" => snapshot_verify(rest),
        "fuzz" => snapshot_fuzz(rest),
        other => Err(format!("unknown snapshot subcommand {other:?} (want save|verify|fuzz)")),
    }
}

/// `flatnet snapshot save --out FILE [--as-rel FILE | --ases N --seed S]`
/// — compile a topology and persist it atomically, so a later
/// `flatnet serve --store FILE` warm-starts without compiling.
fn snapshot_save(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &["lenient"],
        &["out", "as-rel", "ases", "seed", "tier1", "tier2", "max-errors"],
    )?;
    let out = opts.required("out")?;
    let (graph, tiers) = match opts.get("as-rel") {
        Some(path) => {
            let mode = parse_mode(&opts)?;
            let g = load_graph(path, &mode)?;
            let tiers = tiers_for(&g, &opts)?;
            (g, tiers)
        }
        None => {
            let net = generate(&NetGenConfig::paper_2020(
                opts.num_or("ases", 4000usize)?,
                opts.num_or("seed", 2020u64)?,
            ));
            let tiers = net.tiers_for(&net.truth);
            (net.truth, tiers)
        }
    };
    let topo = flatnet_bgpsim::TopologySnapshot::compile(&graph);
    let stored = flatnet_store::StoredSnapshot { version: 1, graph, tiers, topo };
    flatnet_store::save_atomic(out, &stored).map_err(|e| e.to_string())?;
    let report = flatnet_store::verify(out, false).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: v{} {} ASes, {} links, {} bytes",
        report.version,
        thousands(report.nodes as u64),
        thousands(report.links as u64),
        thousands(report.file_bytes),
    );
    Ok(())
}

/// `flatnet snapshot verify --store FILE [--deep]` — decode and
/// checksum-check a store; `--deep` also recompiles the stored graph and
/// demands a bit-identical CSR.
fn snapshot_verify(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["deep"], &["store"])?;
    let path = opts.required("store")?;
    let report = flatnet_store::verify(path, opts.switch("deep")).map_err(|e| e.to_string())?;
    println!(
        "{path}: ok (v{}, {} ASes, {} links, tiers {}/{}, {} bytes{})",
        report.version,
        thousands(report.nodes as u64),
        thousands(report.links as u64),
        report.tier_sizes.0,
        report.tier_sizes.1,
        thousands(report.file_bytes),
        if report.deep { ", deep: recompiled CSR is bit-identical" } else { "" },
    );
    Ok(())
}

/// `flatnet snapshot fuzz --store FILE` — run the deterministic
/// corruption corpus against a valid store image and fail unless every
/// fault degrades to a typed error (the CI robustness gate).
fn snapshot_fuzz(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &[], &["store"])?;
    let path = opts.required("store")?;
    flatnet_store::verify(path, false)
        .map_err(|e| format!("{path}: fuzz needs a valid store image: {e}"))?;
    let bytes = fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let (total, failures) = flatnet_store::run_corpus_checked(&bytes, |r| match &r.outcome {
        flatnet_store::FaultOutcome::TypedError(kind) => {
            flatnet_obs::debug!("ok   {:<48} -> {kind}", r.name);
        }
        flatnet_store::FaultOutcome::Panicked => {
            flatnet_obs::error!("FAIL {:<48} -> decoder panicked", r.name);
        }
        flatnet_store::FaultOutcome::Accepted => {
            flatnet_obs::error!("FAIL {:<48} -> corrupted image accepted", r.name);
        }
    });
    println!("{path}: {total} injected faults, {failures} failures");
    if failures > 0 {
        return Err(format!("{failures} of {total} injected faults were mishandled"));
    }
    Ok(())
}

/// `flatnet metrics [--in PATH] [--prom]` — render an obs snapshot (a
/// `flatnet-obs/v1|v2` JSON file, or the live in-process registry when
/// `--in` is omitted) as the summary table or the Prometheus text
/// exposition.
pub fn metrics(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["prom"], &["in"])?;
    let snap = match opts.get("in") {
        Some(path) => {
            let text =
                fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            flatnet_obs::Snapshot::from_json(&text).map_err(|e| format!("{path}: {e}"))?
        }
        None => flatnet_obs::snapshot(),
    };
    if opts.switch("prom") {
        print!("{}", flatnet_obs::to_prometheus(&snap));
    } else {
        print!("{}", snap.render_table());
    }
    Ok(())
}

/// `flatnet trace top --in PATH [--top N]` — summarize a drained trace
/// dump (a `flatnet-trace/v1` document from `/debug/trace/recent` or
/// `/debug/trace/slow`): stage breakdown, slowest origins, slowest
/// requests.
pub fn trace(args: &[String]) -> Result<(), String> {
    let Some((sub, rest)) = args.split_first() else {
        return Err("trace requires a subcommand (try `trace top --in DUMP.json`)".into());
    };
    if sub != "top" {
        return Err(format!("unknown trace subcommand {sub:?} (want top)"));
    }
    let opts = Opts::parse(rest, &[], &["in", "top"])?;
    let path = opts.required("in")?;
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let dump = flatnet_obs::TraceDump::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    print!("{}", dump.render_top(opts.num_or("top", 10usize)?));
    Ok(())
}

#[cfg(test)]
mod obs_tests {
    use super::*;

    #[test]
    fn metrics_renders_file_snapshots_and_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("flatnet-cli-obs-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("obs.json");
        let reg = flatnet_obs::Registry::new();
        reg.counter("parse.test.records_ok").add(5);
        reg.histogram("serve.stage_us{stage=\"queue_wait\"}").record_us_tagged(80, 9, 15169);
        fs::write(&path, reg.snapshot().to_json()).unwrap();
        let argv = vec!["--in".to_string(), path.to_str().unwrap().to_string()];
        metrics(&argv).unwrap();
        let prom = vec![
            "--in".to_string(),
            path.to_str().unwrap().to_string(),
            "--prom".to_string(),
        ];
        metrics(&prom).unwrap();
        fs::write(&path, "not json").unwrap();
        assert!(metrics(&argv).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_top_summarizes_a_dump() {
        let dir = std::env::temp_dir().join(format!("flatnet-cli-trace-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.json");
        let mut ev = flatnet_obs::TraceEvent {
            trace_id: 7,
            total_us: 1234,
            status: 200,
            origin: 64500,
            ..flatnet_obs::TraceEvent::default()
        };
        ev.set_tag("reachability");
        fs::write(&path, flatnet_obs::TraceDump { events: vec![ev] }.to_json()).unwrap();
        let argv: Vec<String> =
            ["top", "--in", path.to_str().unwrap(), "--top", "5"].iter().map(|s| s.to_string()).collect();
        trace(&argv).unwrap();
        assert!(trace(&["bogus".to_string()]).is_err());
        assert!(trace(&[]).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn dot_neighborhood_export() {
        let dir = std::env::temp_dir().join(format!("flatnet-cli-dot-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let rel = dir.join("rel.txt");
        fs::write(&rel, "1|2|-1|bgp\n2|3|-1|bgp\n2|4|0|bgp\n3|5|-1|bgp\n").unwrap();
        let out = dir.join("g.dot");
        let argv: Vec<String> = [
            "--as-rel",
            rel.to_str().unwrap(),
            "--focus",
            "2",
            "--out",
            out.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        dot(&argv).unwrap();
        let text = fs::read_to_string(&out).unwrap();
        // Neighborhood of AS2: 1 (provider), 3 (customer), 4 (peer) — not 5.
        assert!(text.contains("n1 -> n2;"));
        assert!(text.contains("n2 -> n3;"));
        assert!(text.contains("dir=none"));
        assert!(!text.contains("n5"));
        // Missing focus errors.
        let bad: Vec<String> =
            ["--as-rel", rel.to_str().unwrap(), "--focus", "99"].iter().map(|s| s.to_string()).collect();
        assert!(dot(&bad).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
