//! A GPWv4-like gridded population model.
//!
//! The paper computes "the percentage of population that falls within a
//! 500, 700, and 1000 km radius of each PoP" (§9, Fig. 12) from per-km²
//! gridded population. We substitute a deterministic synthetic grid seeded
//! from the built-in metro table: every metro spreads its population over a
//! small patch of cells with distance-decaying weights, which preserves the
//! only property those analyses need — population mass concentrated around
//! real population centres.

use crate::cities::{City, CITIES};
use crate::coords::{haversine_km, Continent, GeoPoint};

/// One grid cell.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Cell {
    /// Cell centre.
    pub center: GeoPoint,
    /// Population in the cell (absolute persons).
    pub population: f64,
    /// Continent inherited from the seeding metro.
    pub continent: Continent,
}

/// The gridded population model.
#[derive(Debug, Clone, Default)]
pub struct PopulationGrid {
    cells: Vec<Cell>,
}

impl PopulationGrid {
    /// Builds the default grid from the built-in city table: each metro is
    /// expanded into a (2r+1)×(2r+1) patch of cells at `spacing_deg`
    /// spacing with inverse-distance weights (`r = patch_radius`).
    pub fn from_cities(spacing_deg: f64, patch_radius: i32) -> Self {
        Self::from_city_list(CITIES, spacing_deg, patch_radius)
    }

    /// As [`PopulationGrid::from_cities`] over an explicit city list.
    pub fn from_city_list(cities: &[City], spacing_deg: f64, patch_radius: i32) -> Self {
        let mut cells = Vec::new();
        for city in cities {
            let mut weights = Vec::new();
            let mut total = 0.0f64;
            for di in -patch_radius..=patch_radius {
                for dj in -patch_radius..=patch_radius {
                    // Inverse-square-ish decay from the centre cell.
                    let w = 1.0 / (1.0 + (di * di + dj * dj) as f64);
                    weights.push((di, dj, w));
                    total += w;
                }
            }
            for (di, dj, w) in weights {
                let lat = (city.lat + di as f64 * spacing_deg).clamp(-89.9, 89.9);
                let mut lon = city.lon + dj as f64 * spacing_deg;
                if lon > 180.0 {
                    lon -= 360.0;
                } else if lon < -180.0 {
                    lon += 360.0;
                }
                cells.push(Cell {
                    center: GeoPoint::new(lat, lon),
                    population: city.population_m * 1.0e6 * w / total,
                    continent: city.continent,
                });
            }
        }
        PopulationGrid { cells }
    }

    /// All cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Total population of the grid.
    pub fn total_population(&self) -> f64 {
        self.cells.iter().map(|c| c.population).sum()
    }

    /// Total population per continent, in [`Continent::ALL`] order.
    pub fn population_by_continent(&self) -> [(Continent, f64); 6] {
        let mut totals = Continent::ALL.map(|c| (c, 0.0f64));
        for cell in &self.cells {
            let slot = totals.iter_mut().find(|(c, _)| *c == cell.continent).unwrap();
            slot.1 += cell.population;
        }
        totals
    }

    /// Population living within `radius_km` of **any** of `sites`.
    pub fn population_within(&self, sites: &[GeoPoint], radius_km: f64) -> f64 {
        self.cells
            .iter()
            .filter(|cell| sites.iter().any(|s| haversine_km(cell.center, *s) <= radius_km))
            .map(|c| c.population)
            .sum()
    }

    /// Population within `radius_km` of any site, split by continent
    /// (absolute persons), in [`Continent::ALL`] order.
    pub fn population_within_by_continent(
        &self,
        sites: &[GeoPoint],
        radius_km: f64,
    ) -> [(Continent, f64); 6] {
        let mut totals = Continent::ALL.map(|c| (c, 0.0f64));
        for cell in &self.cells {
            if sites.iter().any(|s| haversine_km(cell.center, *s) <= radius_km) {
                let slot = totals.iter_mut().find(|(c, _)| *c == cell.continent).unwrap();
                slot.1 += cell.population;
            }
        }
        totals
    }

    /// Fraction (0..=1) of world population within `radius_km` of any site.
    pub fn coverage_fraction(&self, sites: &[GeoPoint], radius_km: f64) -> f64 {
        let total = self.total_population();
        if total == 0.0 {
            return 0.0;
        }
        self.population_within(sites, radius_km) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities::by_code;

    fn grid() -> PopulationGrid {
        PopulationGrid::from_cities(0.5, 2)
    }

    #[test]
    fn conserves_total_population() {
        let g = grid();
        let want = crate::cities::total_population_m() * 1.0e6;
        let got = g.total_population();
        assert!((got - want).abs() / want < 1e-9, "{got} vs {want}");
    }

    #[test]
    fn city_center_dominates_its_patch() {
        let g = PopulationGrid::from_city_list(&[*by_code("ams").unwrap()], 0.5, 2);
        // 25 cells; centre cell has the largest share.
        assert_eq!(g.cells().len(), 25);
        let max = g.cells().iter().cloned().fold(g.cells()[0], |a, b| {
            if b.population > a.population {
                b
            } else {
                a
            }
        });
        let ams = by_code("ams").unwrap().point();
        assert!(haversine_km(max.center, ams) < 1.0);
    }

    #[test]
    fn coverage_near_city_is_full_far_is_zero() {
        let g = PopulationGrid::from_city_list(&[*by_code("ams").unwrap()], 0.5, 2);
        let ams = by_code("ams").unwrap().point();
        assert!((g.coverage_fraction(&[ams], 500.0) - 1.0).abs() < 1e-9);
        let nowhere = GeoPoint::new(-60.0, -120.0);
        assert_eq!(g.coverage_fraction(&[nowhere], 500.0), 0.0);
        // No sites at all: zero coverage.
        assert_eq!(g.coverage_fraction(&[], 1000.0), 0.0);
    }

    #[test]
    fn coverage_monotone_in_radius_and_sites() {
        let g = grid();
        let ams = by_code("ams").unwrap().point();
        let nyc = by_code("nyc").unwrap().point();
        let c500 = g.coverage_fraction(&[ams], 500.0);
        let c1000 = g.coverage_fraction(&[ams], 1000.0);
        assert!(c1000 >= c500);
        let two = g.coverage_fraction(&[ams, nyc], 500.0);
        assert!(two >= c500);
    }

    #[test]
    fn continent_split_sums_to_total() {
        let g = grid();
        let by_cont = g.population_by_continent();
        let sum: f64 = by_cont.iter().map(|(_, p)| p).sum();
        let total = g.total_population();
        assert!((sum - total).abs() / total < 1e-9, "{sum} vs {total}");
        // Asia has the most people.
        let asia = by_cont.iter().find(|(c, _)| *c == Continent::Asia).unwrap().1;
        for (c, p) in by_cont {
            if c != Continent::Asia {
                assert!(asia >= p, "{} outweighs Asia", c.name());
            }
        }
    }

    #[test]
    fn within_by_continent_only_counts_near_cells() {
        let g = grid();
        let syd = by_code("syd").unwrap().point();
        let within = g.population_within_by_continent(&[syd], 500.0);
        let europe = within.iter().find(|(c, _)| *c == Continent::Europe).unwrap().1;
        assert_eq!(europe, 0.0);
        let oceania = within.iter().find(|(c, _)| *c == Continent::Oceania).unwrap().1;
        assert!(oceania > 0.0);
    }
}
