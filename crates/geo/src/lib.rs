#![warn(missing_docs)]

//! # flatnet-geo — geographic substrate for PoP deployment analysis
//!
//! Section 9 of "Cloud Provider Connectivity in the Flat Internet" compares
//! cloud and transit providers' Point-of-Presence deployments against world
//! population: which networks put PoPs near people, and what share of the
//! population lives within 500/700/1000 km of each network's PoPs
//! (Figures 11 and 12), cross-checked against router hostnames in reverse
//! DNS (Table 3) and PeeringDB facility data (Appendix D geolocation).
//!
//! This crate provides those building blocks from scratch:
//!
//! * [`coords`] — latitude/longitude points, haversine distance, continents;
//! * [`cities`] — a built-in table of ~120 real metro areas (public
//!   coordinates and rough metro populations) that seeds the synthetic
//!   population grid and PoP deployments;
//! * [`popgrid`] — a GPWv4-like gridded population model with
//!   population-within-radius queries;
//! * [`pops`] — network PoP footprints consolidated from multiple sources
//!   (published maps, PeeringDB-like facility lists, rDNS confirmations);
//! * [`rdns`] — router-hostname naming conventions: generation, hoiho-style
//!   convention learning, and location-code extraction;
//! * [`mod@geolocate`] — the paper's Appendix-D active-geolocation procedure
//!   (candidate facilities + RTT-constrained verification).

pub mod cities;
pub mod coords;
pub mod geolocate;
pub mod popgrid;
pub mod pops;
pub mod rdns;

pub use cities::{City, CITIES};
pub use coords::{haversine_km, Continent, GeoPoint};
pub use geolocate::{geolocate, GeolocationResult};
pub use popgrid::PopulationGrid;
pub use pops::{Footprint, PopSite, SiteSource};
pub use rdns::{HostnameConvention, LearnedConvention};
