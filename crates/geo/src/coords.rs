//! Geographic points, great-circle distance, continents.

use std::fmt;

/// Mean Earth radius in kilometres (WGS-84 mean).
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// A latitude/longitude point in degrees.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GeoPoint {
    /// Latitude, −90..=90.
    pub lat: f64,
    /// Longitude, −180..=180.
    pub lon: f64,
}

impl GeoPoint {
    /// A point from degrees.
    pub fn new(lat: f64, lon: f64) -> Self {
        GeoPoint { lat, lon }
    }

    /// Great-circle distance to another point in km.
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        haversine_km(*self, *other)
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.lat, self.lon)
    }
}

/// Haversine great-circle distance between two points, in kilometres.
pub fn haversine_km(a: GeoPoint, b: GeoPoint) -> f64 {
    let (lat1, lon1) = (a.lat.to_radians(), a.lon.to_radians());
    let (lat2, lon2) = (b.lat.to_radians(), b.lon.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

/// The continents used in the paper's Fig. 12 grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub enum Continent {
    /// Africa.
    Africa,
    /// Asia (incl. the Middle East, as in the paper's discussion).
    Asia,
    /// Europe.
    Europe,
    /// North and Central America.
    NorthAmerica,
    /// South America.
    SouthAmerica,
    /// Oceania (the paper spells it "Oceana" in Fig. 12).
    Oceania,
}

impl Continent {
    /// Report label (matching the paper's figure labels).
    pub fn name(self) -> &'static str {
        match self {
            Continent::Africa => "Africa",
            Continent::Asia => "Asia",
            Continent::Europe => "Europe",
            Continent::NorthAmerica => "North America",
            Continent::SouthAmerica => "South America",
            Continent::Oceania => "Oceania",
        }
    }

    /// All continents in report order.
    pub const ALL: [Continent; 6] = [
        Continent::Africa,
        Continent::Asia,
        Continent::Europe,
        Continent::NorthAmerica,
        Continent::SouthAmerica,
        Continent::Oceania,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_known_distances() {
        // London <-> New York ≈ 5570 km.
        let london = GeoPoint::new(51.5074, -0.1278);
        let nyc = GeoPoint::new(40.7128, -74.0060);
        let d = haversine_km(london, nyc);
        assert!((d - 5570.0).abs() < 50.0, "got {d}");
        // Sydney <-> Singapore ≈ 6300 km.
        let syd = GeoPoint::new(-33.8688, 151.2093);
        let sin = GeoPoint::new(1.3521, 103.8198);
        let d = haversine_km(syd, sin);
        assert!((d - 6300.0).abs() < 100.0, "got {d}");
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = GeoPoint::new(10.0, 20.0);
        let b = GeoPoint::new(-35.0, 150.0);
        assert_eq!(haversine_km(a, a), 0.0);
        assert!((haversine_km(a, b) - haversine_km(b, a)).abs() < 1e-9);
    }

    #[test]
    fn antimeridian_crossing() {
        // 179.5°E to 179.5°W at the equator is ~111 km, not ~39,800 km.
        let a = GeoPoint::new(0.0, 179.5);
        let b = GeoPoint::new(0.0, -179.5);
        let d = haversine_km(a, b);
        assert!((d - 111.0).abs() < 2.0, "got {d}");
    }

    #[test]
    fn continent_labels() {
        assert_eq!(Continent::NorthAmerica.name(), "North America");
        assert_eq!(Continent::ALL.len(), 6);
    }

    #[test]
    fn display_formats() {
        let p = GeoPoint::new(52.3676, 4.9041);
        assert_eq!(p.to_string(), "(52.368, 4.904)");
    }
}
