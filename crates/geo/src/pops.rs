//! Network PoP footprints consolidated from multiple public sources.
//!
//! §4.2: "We use network maps provided by individual ASes when available
//! ... incorporate router locations from looking glass websites ...
//! incorporate data from PeeringDB ... \[and\] router hostnames" — each PoP
//! of a network can therefore be corroborated by several sources, and
//! Table 3 reports how many PoPs rDNS could confirm. [`Footprint`] models
//! exactly that: a per-network set of city-level sites, each annotated with
//! the sources that mentioned it.

use crate::coords::GeoPoint;

/// Where knowledge of a PoP came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub enum SiteSource {
    /// The network's published backbone map.
    NetworkMap,
    /// A looking-glass router list.
    LookingGlass,
    /// PeeringDB facility presence.
    PeeringDb,
    /// A router hostname in reverse DNS encoding the location.
    Rdns,
}

impl SiteSource {
    /// Report label.
    pub fn name(self) -> &'static str {
        match self {
            SiteSource::NetworkMap => "map",
            SiteSource::LookingGlass => "looking-glass",
            SiteSource::PeeringDb => "peeringdb",
            SiteSource::Rdns => "rdns",
        }
    }
}

/// One city-level PoP site.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PopSite {
    /// City code (see [`crate::cities`]).
    pub city: String,
    /// Coordinates of the site (city centre granularity).
    pub point: GeoPoint,
    /// Sources corroborating the site, sorted and deduplicated.
    pub sources: Vec<SiteSource>,
}

/// A network's consolidated city-level PoP footprint.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Footprint {
    /// Display name, e.g. `"Google"`.
    pub name: String,
    /// The network's ASN.
    pub asn: u32,
    /// Consolidated sites, in insertion order of first mention.
    sites: Vec<PopSite>,
    /// Router/interface hostnames observed in rDNS for this network
    /// (Table 3's second column); 0 for networks with no rDNS (Amazon).
    pub router_hostnames: usize,
}

impl Footprint {
    /// An empty footprint.
    pub fn new(name: impl Into<String>, asn: u32) -> Self {
        Footprint { name: name.into(), asn, sites: Vec::new(), router_hostnames: 0 }
    }

    /// Records a PoP mention from one source, merging into an existing site
    /// with the same city code if present.
    pub fn add_site(&mut self, city: &str, point: GeoPoint, source: SiteSource) {
        if let Some(site) = self.sites.iter_mut().find(|s| s.city == city) {
            if !site.sources.contains(&source) {
                site.sources.push(source);
                site.sources.sort_unstable();
            }
        } else {
            self.sites.push(PopSite { city: city.to_string(), point, sources: vec![source] });
        }
    }

    /// The consolidated sites.
    pub fn sites(&self) -> &[PopSite] {
        &self.sites
    }

    /// Number of distinct PoP cities (Table 3's "# Graph PoPs").
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether no sites are recorded.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Site coordinates, for population-coverage queries.
    pub fn points(&self) -> Vec<GeoPoint> {
        self.sites.iter().map(|s| s.point).collect()
    }

    /// Sites confirmed by rDNS hostnames.
    pub fn rdns_confirmed(&self) -> usize {
        self.sites.iter().filter(|s| s.sources.contains(&SiteSource::Rdns)).count()
    }

    /// Percentage (0..=100) of PoPs with rDNS confirmation (Table 3's
    /// "% rDNS"); 0 for an empty footprint.
    pub fn rdns_percent(&self) -> f64 {
        if self.sites.is_empty() {
            0.0
        } else {
            100.0 * self.rdns_confirmed() as f64 / self.sites.len() as f64
        }
    }

    /// Whether the footprint has a PoP in the given city.
    pub fn has_city(&self, city: &str) -> bool {
        self.sites.iter().any(|s| s.city == city)
    }
}

/// Cities where at least one of `a`'s sites exists but none of `b`'s —
/// Fig. 11's "cloud only" / "transit only" site classification, computed
/// over cohorts by unioning footprints first.
pub fn cities_only_in(a: &Footprint, b: &Footprint) -> Vec<String> {
    a.sites()
        .iter()
        .filter(|s| !b.has_city(&s.city))
        .map(|s| s.city.clone())
        .collect()
}

/// Unions several footprints into a cohort footprint (e.g. "all cloud
/// providers" vs "all transit providers" in Fig. 11/12a). Hostname counts
/// are summed.
pub fn union_footprints(name: &str, footprints: &[&Footprint]) -> Footprint {
    let mut out = Footprint::new(name, 0);
    for fp in footprints {
        for site in fp.sites() {
            for &src in &site.sources {
                out.add_site(&site.city, site.point, src);
            }
        }
        out.router_hostnames += fp.router_hostnames;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities::by_code;

    fn site(code: &str) -> GeoPoint {
        by_code(code).unwrap().point()
    }

    #[test]
    fn merges_sources_per_city() {
        let mut fp = Footprint::new("Google", 15169);
        fp.add_site("ams", site("ams"), SiteSource::NetworkMap);
        fp.add_site("ams", site("ams"), SiteSource::Rdns);
        fp.add_site("ams", site("ams"), SiteSource::Rdns); // duplicate source
        fp.add_site("fra", site("fra"), SiteSource::PeeringDb);
        assert_eq!(fp.len(), 2);
        assert_eq!(fp.sites()[0].sources, vec![SiteSource::NetworkMap, SiteSource::Rdns]);
        assert!(fp.has_city("ams"));
        assert!(!fp.has_city("nyc"));
    }

    #[test]
    fn rdns_confirmation_stats() {
        let mut fp = Footprint::new("NTT", 2914);
        fp.add_site("ams", site("ams"), SiteSource::Rdns);
        fp.add_site("fra", site("fra"), SiteSource::NetworkMap);
        fp.add_site("lon", site("lon"), SiteSource::Rdns);
        assert_eq!(fp.rdns_confirmed(), 2);
        assert!((fp.rdns_percent() - 66.666).abs() < 0.01);
        let empty = Footprint::new("x", 1);
        assert_eq!(empty.rdns_percent(), 0.0);
        assert!(empty.is_empty());
    }

    #[test]
    fn only_in_difference() {
        let mut cloud = Footprint::new("cloud", 0);
        cloud.add_site("sha", site("sha"), SiteSource::NetworkMap);
        cloud.add_site("ams", site("ams"), SiteSource::NetworkMap);
        let mut transit = Footprint::new("transit", 0);
        transit.add_site("ams", site("ams"), SiteSource::NetworkMap);
        transit.add_site("lim", site("lim"), SiteSource::NetworkMap);
        assert_eq!(cities_only_in(&cloud, &transit), vec!["sha".to_string()]);
        assert_eq!(cities_only_in(&transit, &cloud), vec!["lim".to_string()]);
    }

    #[test]
    fn union_combines_sites_and_hostnames() {
        let mut a = Footprint::new("A", 1);
        a.add_site("ams", site("ams"), SiteSource::NetworkMap);
        a.router_hostnames = 10;
        let mut b = Footprint::new("B", 2);
        b.add_site("ams", site("ams"), SiteSource::Rdns);
        b.add_site("nyc", site("nyc"), SiteSource::NetworkMap);
        b.router_hostnames = 5;
        let u = union_footprints("cohort", &[&a, &b]);
        assert_eq!(u.len(), 2);
        assert_eq!(u.router_hostnames, 15);
        let ams = u.sites().iter().find(|s| s.city == "ams").unwrap();
        assert_eq!(ams.sources, vec![SiteSource::NetworkMap, SiteSource::Rdns]);
    }

    #[test]
    fn points_align_with_sites() {
        let mut fp = Footprint::new("x", 1);
        fp.add_site("syd", site("syd"), SiteSource::LookingGlass);
        let pts = fp.points();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].lat, by_code("syd").unwrap().lat);
    }
}
