//! Appendix-D active geolocation: candidate facilities + RTT verification.
//!
//! The paper geolocates traceroute IPs by (1) deriving candidate
//! ⟨facility, city⟩ locations from PeeringDB for the address's AS,
//! filtered by any rDNS location hint, (2) picking a RIPE-Atlas-style
//! vantage point near each candidate city, and (3) pinging: an RTT of at
//! most 1 ms bounds the distance to ~100 km (speed of light in fibre), so
//! the address is accepted as being in that city.

use crate::coords::GeoPoint;

/// Speed-of-light-in-fibre distance bound for a 1 ms RTT, in km.
pub const RTT_1MS_DISTANCE_KM: f64 = 100.0;

/// A successful geolocation.
#[derive(Debug, Clone, PartialEq)]
pub struct GeolocationResult {
    /// City code of the accepted candidate.
    pub city: String,
    /// Candidate coordinates.
    pub point: GeoPoint,
    /// The verifying RTT in milliseconds.
    pub rtt_ms: f64,
}

/// Runs the Appendix-D procedure.
///
/// * `candidates` — ⟨city code, coordinates⟩ pairs derived from PeeringDB
///   facilities of the target's AS.
/// * `rdns_hint` — a city code extracted from the hostname; when present,
///   only matching candidates are probed ("If there are location hints in
///   rDNS, we only use candidate locations that match it").
/// * `probe` — measures RTT (ms) from a vantage point near the given
///   candidate; `None` models "no VP within 40 km in a suitable AS".
///
/// Candidates are probed in order; the first with RTT ≤ 1 ms wins.
pub fn geolocate(
    candidates: &[(String, GeoPoint)],
    rdns_hint: Option<&str>,
    mut probe: impl FnMut(&GeoPoint) -> Option<f64>,
) -> Option<GeolocationResult> {
    for (city, point) in candidates {
        if let Some(hint) = rdns_hint {
            if city != hint {
                continue;
            }
        }
        if let Some(rtt) = probe(point) {
            if rtt <= 1.0 {
                return Some(GeolocationResult { city: city.clone(), point: *point, rtt_ms: rtt });
            }
        }
    }
    None
}

/// A physically grounded probe model: RTT implied by the great-circle
/// distance between the vantage point and the target's *true* location,
/// at ~2/3 c in fibre with a small constant overhead. Useful to drive
/// [`geolocate`] in simulation.
pub fn fiber_rtt_ms(vp: GeoPoint, true_location: GeoPoint) -> f64 {
    let km = vp.distance_km(&true_location);
    // ~200 km per ms one-way in fibre => RTT = 2 * km / 200 = km / 100.
    km / RTT_1MS_DISTANCE_KM + 0.05
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities::by_code;

    fn cand(code: &str) -> (String, GeoPoint) {
        (code.to_string(), by_code(code).unwrap().point())
    }

    #[test]
    fn accepts_the_true_city() {
        let true_loc = by_code("ams").unwrap().point();
        let candidates = vec![cand("fra"), cand("ams"), cand("lon")];
        let got = geolocate(&candidates, None, |vp| Some(fiber_rtt_ms(*vp, true_loc))).unwrap();
        assert_eq!(got.city, "ams");
        assert!(got.rtt_ms <= 1.0);
    }

    #[test]
    fn rdns_hint_restricts_candidates() {
        let true_loc = by_code("ams").unwrap().point();
        let candidates = vec![cand("fra"), cand("ams")];
        // Hint says Frankfurt: the Amsterdam candidate is never probed, and
        // Frankfurt fails the RTT test -> no result (conservative).
        let got = geolocate(&candidates, Some("fra"), |vp| Some(fiber_rtt_ms(*vp, true_loc)));
        assert!(got.is_none());
        // Correct hint still succeeds.
        let got = geolocate(&candidates, Some("ams"), |vp| Some(fiber_rtt_ms(*vp, true_loc)));
        assert_eq!(got.unwrap().city, "ams");
    }

    #[test]
    fn unavailable_vantage_points_are_skipped() {
        let true_loc = by_code("ams").unwrap().point();
        let candidates = vec![cand("ams"), cand("fra")];
        // No VP at Amsterdam: nothing verifies.
        let got = geolocate(&candidates, None, |vp| {
            if vp.distance_km(&true_loc) < 10.0 {
                None
            } else {
                Some(fiber_rtt_ms(*vp, true_loc))
            }
        });
        assert!(got.is_none());
    }

    #[test]
    fn far_targets_never_verify() {
        let true_loc = by_code("syd").unwrap().point();
        let candidates = vec![cand("ams"), cand("fra"), cand("nyc")];
        let got = geolocate(&candidates, None, |vp| Some(fiber_rtt_ms(*vp, true_loc)));
        assert!(got.is_none());
    }

    #[test]
    fn empty_candidates() {
        assert!(geolocate(&[], None, |_| Some(0.1)).is_none());
    }

    #[test]
    fn fiber_rtt_scale() {
        let a = by_code("ams").unwrap().point();
        let b = by_code("fra").unwrap().point();
        // ~360 km apart -> ~3.7 ms RTT in this model.
        let rtt = fiber_rtt_ms(a, b);
        assert!(rtt > 2.0 && rtt < 6.0, "rtt {rtt}");
        // Same point: just the overhead.
        assert!(fiber_rtt_ms(a, a) < 0.1);
    }
}
