//! Router hostname conventions: generation, learning, and location
//! extraction.
//!
//! §4.2: router hostnames "often encode location information hints such as
//! airport code or other abbreviations" (e.g. NTT routers live under
//! `gin.ntt.net` with tokens like `ae-5.r20.amstnl02`). The paper extracts
//! locations two ways — hand-written regexes per AS, and `sc_hoiho`-style
//! learned naming conventions — and reports that both agreed. We model a
//! convention as *(domain suffix, token position, code style)*: enough to
//! generate realistic hostnames in the synthetic Internet and to learn the
//! convention back from samples.

use std::collections::BTreeMap;

/// A known (or generated) router hostname convention for one network.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HostnameConvention {
    /// DNS suffix, e.g. `"gin.ntt.net"`.
    pub domain: String,
    /// Index (from the left) of the dot-separated token carrying the city
    /// code.
    pub code_token: usize,
}

impl HostnameConvention {
    /// A convention under the given domain with the code in token `idx`.
    pub fn new(domain: impl Into<String>, code_token: usize) -> Self {
        HostnameConvention { domain: domain.into(), code_token }
    }

    /// Renders a router hostname: interface token(s) first, the city token
    /// (`code` + unit number) at `code_token`, then the domain.
    ///
    /// With `code_token == 1`: `xe-0-1-0.ams2.gin.ntt.net`.
    pub fn hostname(&self, iface: &str, code: &str, unit: u32) -> String {
        let mut tokens: Vec<String> = Vec::new();
        tokens.push(iface.to_string());
        // Pad with router-role tokens until the code position.
        while tokens.len() < self.code_token {
            tokens.push(format!("r{}", tokens.len()));
        }
        tokens.push(format!("{code}{unit}"));
        format!("{}.{}", tokens.join("."), self.domain)
    }

    /// Extracts the city code from a hostname following this convention.
    /// Returns `None` when the domain does not match, the token is missing,
    /// or the token does not look like `code + digits` with a known code.
    pub fn extract<'c>(&self, hostname: &str, known_codes: &'c [&str]) -> Option<&'c str> {
        let prefix = hostname.strip_suffix(&self.domain)?.strip_suffix('.')?;
        let tokens: Vec<&str> = prefix.split('.').collect();
        let token = tokens.get(self.code_token)?;
        extract_code(token, known_codes)
    }
}

/// Checks whether `token` is `<code><digits>` for a known code.
fn extract_code<'c>(token: &str, known_codes: &'c [&str]) -> Option<&'c str> {
    if token.len() < 3 {
        return None;
    }
    let (head, tail) = token.split_at(3);
    if !tail.chars().all(|c| c.is_ascii_digit()) {
        return None;
    }
    known_codes.iter().find(|&&c| c == head).copied()
}

/// A naming convention learned from samples, `sc_hoiho` style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LearnedConvention {
    /// The underlying convention (domain + token position).
    pub convention: HostnameConvention,
    /// How many samples supported it.
    pub support: usize,
}

impl LearnedConvention {
    /// Learns a convention from `(hostname, true city code)` samples.
    ///
    /// Finds the most common *(domain suffix, token index)* pair for which
    /// the token at that index is `code + digits` with the sample's true
    /// code. Requires at least `min_support` agreeing samples (the paper's
    /// `sc_hoiho` similarly failed on ASes with too few alias groups).
    pub fn learn(samples: &[(String, String)], min_support: usize) -> Option<LearnedConvention> {
        let mut votes: BTreeMap<(String, usize), usize> = BTreeMap::new();
        for (hostname, code) in samples {
            let tokens: Vec<&str> = hostname.split('.').collect();
            if tokens.len() < 2 {
                continue;
            }
            for i in 0..tokens.len().saturating_sub(1) {
                let token = tokens[i];
                if token.len() >= 3 {
                    let (head, tail) = token.split_at(3);
                    if head == code && tail.chars().all(|c| c.is_ascii_digit()) {
                        let domain = tokens[i + 1..].join(".");
                        *votes.entry((domain, i)).or_insert(0) += 1;
                    }
                }
            }
        }
        let ((domain, idx), support) = votes.into_iter().max_by_key(|&(_, v)| v)?;
        if support < min_support {
            return None;
        }
        Some(LearnedConvention {
            convention: HostnameConvention::new(domain, idx),
            support,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CODES: &[&str] = &["ams", "fra", "lon", "nyc", "sjc"];

    #[test]
    fn generates_and_extracts_roundtrip() {
        let conv = HostnameConvention::new("gin.ntt.net", 1);
        let h = conv.hostname("xe-0-1-0", "ams", 2);
        assert_eq!(h, "xe-0-1-0.ams2.gin.ntt.net");
        assert_eq!(conv.extract(&h, CODES), Some("ams"));
    }

    #[test]
    fn code_token_deeper_positions_pad_role_tokens() {
        let conv = HostnameConvention::new("example.net", 2);
        let h = conv.hostname("ae1", "fra", 7);
        assert_eq!(h, "ae1.r1.fra7.example.net");
        assert_eq!(conv.extract(&h, CODES), Some("fra"));
    }

    #[test]
    fn extraction_rejects_wrong_domain_or_unknown_code() {
        let conv = HostnameConvention::new("gin.ntt.net", 1);
        assert_eq!(conv.extract("xe-0.ams2.other.net", CODES), None);
        assert_eq!(conv.extract("xe-0.zzz2.gin.ntt.net", CODES), None);
        assert_eq!(conv.extract("xe-0.amsx.gin.ntt.net", CODES), None); // non-digit tail
        assert_eq!(conv.extract("gin.ntt.net", CODES), None);
    }

    #[test]
    fn learns_convention_from_samples() {
        let conv = HostnameConvention::new("core.example.org", 1);
        let samples: Vec<(String, String)> = [("ams", 1), ("fra", 2), ("lon", 3), ("ams", 4)]
            .iter()
            .map(|&(code, unit)| (conv.hostname("xe-0", code, unit), code.to_string()))
            .collect();
        let learned = LearnedConvention::learn(&samples, 3).unwrap();
        assert_eq!(learned.convention, conv);
        assert_eq!(learned.support, 4);
        // The learned convention extracts codes from fresh hostnames.
        let fresh = conv.hostname("ae9", "nyc", 1);
        assert_eq!(learned.convention.extract(&fresh, CODES), Some("nyc"));
    }

    #[test]
    fn learning_fails_below_min_support() {
        let conv = HostnameConvention::new("x.net", 1);
        let samples = vec![(conv.hostname("a", "ams", 1), "ams".to_string())];
        assert!(LearnedConvention::learn(&samples, 3).is_none());
        assert!(LearnedConvention::learn(&[], 1).is_none());
    }

    #[test]
    fn learning_ignores_non_conforming_samples() {
        let conv = HostnameConvention::new("y.net", 1);
        let mut samples: Vec<(String, String)> = (0..5)
            .map(|u| (conv.hostname("xe", "lon", u), "lon".to_string()))
            .collect();
        samples.push(("randomhost".to_string(), "ams".to_string()));
        samples.push(("no-code.here.y.net".to_string(), "fra".to_string()));
        let learned = LearnedConvention::learn(&samples, 3).unwrap();
        assert_eq!(learned.support, 5);
        assert_eq!(learned.convention.domain, "y.net");
    }
}
