//! A built-in table of major world metropolitan areas.
//!
//! The paper overlays PoP deployments on GPWv4 gridded world population and
//! measures proximity to population centres. GPWv4 itself is a large
//! licensed dataset; we substitute a synthetic grid seeded from this table
//! of ~120 real metro areas with public coordinates and approximate metro
//! populations (in millions, circa 2020). Airport-style codes drive router
//! hostname generation and rDNS location extraction.

use crate::coords::{Continent, GeoPoint};

/// One metro area.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct City {
    /// Three-letter location code (airport-style), lowercase.
    pub code: &'static str,
    /// Metro name.
    pub name: &'static str,
    /// ISO-ish country code.
    pub country: &'static str,
    /// Continent grouping used by Fig. 12.
    pub continent: Continent,
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
    /// Approximate metro population, millions.
    pub population_m: f64,
}

impl City {
    /// The city's coordinates.
    pub fn point(&self) -> GeoPoint {
        GeoPoint::new(self.lat, self.lon)
    }
}

macro_rules! city {
    ($code:literal, $name:literal, $country:literal, $cont:ident, $lat:literal, $lon:literal, $pop:literal) => {
        City {
            code: $code,
            name: $name,
            country: $country,
            continent: Continent::$cont,
            lat: $lat,
            lon: $lon,
            population_m: $pop,
        }
    };
}

/// The metro table, ordered by descending population within each continent
/// block. Codes are unique.
pub const CITIES: &[City] = &[
    // --- Asia ---
    city!("tyo", "Tokyo", "JP", Asia, 35.6762, 139.6503, 37.4),
    city!("del", "Delhi", "IN", Asia, 28.7041, 77.1025, 30.3),
    city!("sha", "Shanghai", "CN", Asia, 31.2304, 121.4737, 27.1),
    city!("dac", "Dhaka", "BD", Asia, 23.8103, 90.4125, 21.0),
    city!("bom", "Mumbai", "IN", Asia, 19.0760, 72.8777, 20.4),
    city!("bjs", "Beijing", "CN", Asia, 39.9042, 116.4074, 20.5),
    city!("osa", "Osaka", "JP", Asia, 34.6937, 135.5023, 19.2),
    city!("krc", "Karachi", "PK", Asia, 24.8607, 67.0011, 16.1),
    city!("cgk", "Jakarta", "ID", Asia, -6.2088, 106.8456, 10.8),
    city!("mnl", "Manila", "PH", Asia, 14.5995, 120.9842, 13.9),
    city!("ccu", "Kolkata", "IN", Asia, 22.5726, 88.3639, 14.9),
    city!("sel", "Seoul", "KR", Asia, 37.5665, 126.9780, 9.9),
    city!("can", "Guangzhou", "CN", Asia, 23.1291, 113.2644, 13.3),
    city!("szx", "Shenzhen", "CN", Asia, 22.5431, 114.0579, 12.4),
    city!("maa", "Chennai", "IN", Asia, 13.0827, 80.2707, 11.0),
    city!("blr", "Bangalore", "IN", Asia, 12.9716, 77.5946, 12.3),
    city!("bkk", "Bangkok", "TH", Asia, 13.7563, 100.5018, 10.5),
    city!("hyd", "Hyderabad", "IN", Asia, 17.3850, 78.4867, 10.0),
    city!("lhe", "Lahore", "PK", Asia, 31.5204, 74.3587, 12.6),
    city!("sgn", "Ho Chi Minh City", "VN", Asia, 10.8231, 106.6297, 8.6),
    city!("han", "Hanoi", "VN", Asia, 21.0278, 105.8342, 8.0),
    city!("chg", "Chongqing", "CN", Asia, 29.4316, 106.9123, 15.9),
    city!("che", "Chengdu", "CN", Asia, 30.5728, 104.0668, 9.1),
    city!("sin", "Singapore", "SG", Asia, 1.3521, 103.8198, 5.7),
    city!("hkg", "Hong Kong", "HK", Asia, 22.3193, 114.1694, 7.5),
    city!("tpe", "Taipei", "TW", Asia, 25.0330, 121.5654, 7.0),
    city!("kul", "Kuala Lumpur", "MY", Asia, 3.1390, 101.6869, 7.6),
    city!("ist", "Istanbul", "TR", Asia, 41.0082, 28.9784, 15.5),
    city!("thr", "Tehran", "IR", Asia, 35.6892, 51.3890, 9.1),
    city!("bgw", "Baghdad", "IQ", Asia, 33.3152, 44.3661, 7.1),
    city!("ryd", "Riyadh", "SA", Asia, 24.7136, 46.6753, 7.0),
    city!("dxb", "Dubai", "AE", Asia, 25.2048, 55.2708, 3.4),
    city!("tlv", "Tel Aviv", "IL", Asia, 32.0853, 34.7818, 3.9),
    city!("ygn", "Yangon", "MM", Asia, 16.8661, 96.1951, 5.2),
    // --- Europe ---
    city!("mow", "Moscow", "RU", Europe, 55.7558, 37.6173, 12.5),
    city!("par", "Paris", "FR", Europe, 48.8566, 2.3522, 11.0),
    city!("lon", "London", "GB", Europe, 51.5074, -0.1278, 9.3),
    city!("mad", "Madrid", "ES", Europe, 40.4168, -3.7038, 6.6),
    city!("bcn", "Barcelona", "ES", Europe, 41.3851, 2.1734, 5.6),
    city!("ber", "Berlin", "DE", Europe, 52.5200, 13.4050, 3.6),
    city!("mil", "Milan", "IT", Europe, 45.4642, 9.1900, 3.1),
    city!("rom", "Rome", "IT", Europe, 41.9028, 12.4964, 4.3),
    city!("ams", "Amsterdam", "NL", Europe, 52.3676, 4.9041, 2.5),
    city!("fra", "Frankfurt", "DE", Europe, 50.1109, 8.6821, 2.3),
    city!("muc", "Munich", "DE", Europe, 48.1351, 11.5820, 2.9),
    city!("ham", "Hamburg", "DE", Europe, 53.5511, 9.9937, 2.7),
    city!("vie", "Vienna", "AT", Europe, 48.2082, 16.3738, 2.6),
    city!("waw", "Warsaw", "PL", Europe, 52.2297, 21.0122, 3.1),
    city!("bud", "Budapest", "HU", Europe, 47.4979, 19.0402, 3.0),
    city!("buh", "Bucharest", "RO", Europe, 44.4268, 26.1025, 2.1),
    city!("ath", "Athens", "GR", Europe, 37.9838, 23.7275, 3.1),
    city!("lis", "Lisbon", "PT", Europe, 38.7223, -9.1393, 2.9),
    city!("dub", "Dublin", "IE", Europe, 53.3498, -6.2603, 2.0),
    city!("brs", "Brussels", "BE", Europe, 50.8503, 4.3517, 2.1),
    city!("zrh", "Zurich", "CH", Europe, 47.3769, 8.5417, 1.4),
    city!("gva", "Geneva", "CH", Europe, 46.2044, 6.1432, 0.6),
    city!("cph", "Copenhagen", "DK", Europe, 55.6761, 12.5683, 2.1),
    city!("sto", "Stockholm", "SE", Europe, 59.3293, 18.0686, 2.4),
    city!("osl", "Oslo", "NO", Europe, 59.9139, 10.7522, 1.7),
    city!("hel", "Helsinki", "FI", Europe, 60.1699, 24.9384, 1.5),
    city!("prg", "Prague", "CZ", Europe, 50.0755, 14.4378, 2.7),
    city!("kbp", "Kyiv", "UA", Europe, 50.4501, 30.5234, 3.0),
    city!("led", "St Petersburg", "RU", Europe, 59.9311, 30.3609, 5.4),
    city!("man", "Manchester", "GB", Europe, 53.4808, -2.2426, 2.8),
    city!("mrs", "Marseille", "FR", Europe, 43.2965, 5.3698, 1.8),
    // --- North America ---
    city!("nyc", "New York", "US", NorthAmerica, 40.7128, -74.0060, 18.8),
    city!("mex", "Mexico City", "MX", NorthAmerica, 19.4326, -99.1332, 21.8),
    city!("lax", "Los Angeles", "US", NorthAmerica, 34.0522, -118.2437, 12.4),
    city!("chi", "Chicago", "US", NorthAmerica, 41.8781, -87.6298, 8.9),
    city!("dfw", "Dallas", "US", NorthAmerica, 32.7767, -96.7970, 7.6),
    city!("hou", "Houston", "US", NorthAmerica, 29.7604, -95.3698, 7.1),
    city!("was", "Washington DC", "US", NorthAmerica, 38.9072, -77.0369, 6.3),
    city!("mia", "Miami", "US", NorthAmerica, 25.7617, -80.1918, 6.2),
    city!("phl", "Philadelphia", "US", NorthAmerica, 39.9526, -75.1652, 6.1),
    city!("atl", "Atlanta", "US", NorthAmerica, 33.7490, -84.3880, 6.0),
    city!("phx", "Phoenix", "US", NorthAmerica, 33.4484, -112.0740, 4.9),
    city!("bos", "Boston", "US", NorthAmerica, 42.3601, -71.0589, 4.9),
    city!("sfo", "San Francisco", "US", NorthAmerica, 37.7749, -122.4194, 4.7),
    city!("sjc", "San Jose", "US", NorthAmerica, 37.3382, -121.8863, 2.0),
    city!("sea", "Seattle", "US", NorthAmerica, 47.6062, -122.3321, 4.0),
    city!("den", "Denver", "US", NorthAmerica, 39.7392, -104.9903, 3.0),
    city!("det", "Detroit", "US", NorthAmerica, 42.3314, -83.0458, 4.3),
    city!("min", "Minneapolis", "US", NorthAmerica, 44.9778, -93.2650, 3.7),
    city!("tor", "Toronto", "CA", NorthAmerica, 43.6532, -79.3832, 6.2),
    city!("mtl", "Montreal", "CA", NorthAmerica, 45.5017, -73.5673, 4.2),
    city!("van", "Vancouver", "CA", NorthAmerica, 49.2827, -123.1207, 2.6),
    city!("gdl", "Guadalajara", "MX", NorthAmerica, 20.6597, -103.3496, 5.3),
    city!("mty", "Monterrey", "MX", NorthAmerica, 25.6866, -100.3161, 5.3),
    city!("hav", "Havana", "CU", NorthAmerica, 23.1136, -82.3666, 2.1),
    city!("gua", "Guatemala City", "GT", NorthAmerica, 14.6349, -90.5069, 3.0),
    city!("pty", "Panama City", "PA", NorthAmerica, 8.9824, -79.5199, 1.9),
    city!("slc", "Salt Lake City", "US", NorthAmerica, 40.7608, -111.8910, 1.2),
    city!("las", "Las Vegas", "US", NorthAmerica, 36.1699, -115.1398, 2.3),
    // --- South America ---
    city!("sao", "Sao Paulo", "BR", SouthAmerica, -23.5505, -46.6333, 22.0),
    city!("bue", "Buenos Aires", "AR", SouthAmerica, -34.6037, -58.3816, 15.2),
    city!("rio", "Rio de Janeiro", "BR", SouthAmerica, -22.9068, -43.1729, 13.5),
    city!("bog", "Bogota", "CO", SouthAmerica, 4.7110, -74.0721, 10.9),
    city!("lim", "Lima", "PE", SouthAmerica, -12.0464, -77.0428, 10.7),
    city!("scl", "Santiago", "CL", SouthAmerica, -33.4489, -70.6693, 6.8),
    city!("ccs", "Caracas", "VE", SouthAmerica, 10.4806, -66.9036, 2.9),
    city!("uio", "Quito", "EC", SouthAmerica, -0.1807, -78.4678, 1.9),
    city!("mvd", "Montevideo", "UY", SouthAmerica, -34.9011, -56.1645, 1.7),
    city!("asu", "Asuncion", "PY", SouthAmerica, -25.2637, -57.5759, 2.3),
    city!("for", "Fortaleza", "BR", SouthAmerica, -3.7319, -38.5267, 4.1),
    city!("poa", "Porto Alegre", "BR", SouthAmerica, -30.0346, -51.2177, 4.3),
    city!("mde", "Medellin", "CO", SouthAmerica, 6.2442, -75.5812, 4.0),
    // --- Africa ---
    city!("cai", "Cairo", "EG", Africa, 30.0444, 31.2357, 20.9),
    city!("los", "Lagos", "NG", Africa, 6.5244, 3.3792, 14.4),
    city!("jnb", "Johannesburg", "ZA", Africa, -26.2041, 28.0473, 9.6),
    city!("cpt", "Cape Town", "ZA", Africa, -33.9249, 18.4241, 4.6),
    city!("nbo", "Nairobi", "KE", Africa, -1.2921, 36.8219, 4.7),
    city!("add", "Addis Ababa", "ET", Africa, 9.0320, 38.7469, 4.8),
    city!("dar", "Dar es Salaam", "TZ", Africa, -6.7924, 39.2083, 6.7),
    city!("acc", "Accra", "GH", Africa, 5.6037, -0.1870, 2.5),
    city!("abj", "Abidjan", "CI", Africa, 5.3600, -4.0083, 5.2),
    city!("cas", "Casablanca", "MA", Africa, 33.5731, -7.5898, 3.7),
    city!("alg", "Algiers", "DZ", Africa, 36.7538, 3.0588, 2.7),
    city!("tun", "Tunis", "TN", Africa, 36.8065, 10.1815, 2.3),
    city!("dkr", "Dakar", "SN", Africa, 14.7167, -17.4677, 3.1),
    city!("kan", "Kano", "NG", Africa, 12.0022, 8.5920, 4.1),
    city!("lua", "Luanda", "AO", Africa, -8.8390, 13.2894, 8.3),
    city!("khi", "Khartoum", "SD", Africa, 15.5007, 32.5599, 5.8),
    // --- Oceania ---
    city!("syd", "Sydney", "AU", Oceania, -33.8688, 151.2093, 5.3),
    city!("mel", "Melbourne", "AU", Oceania, -37.8136, 144.9631, 5.1),
    city!("bne", "Brisbane", "AU", Oceania, -27.4698, 153.0251, 2.6),
    city!("per", "Perth", "AU", Oceania, -31.9505, 115.8605, 2.1),
    city!("akl", "Auckland", "NZ", Oceania, -36.8485, 174.7633, 1.7),
    city!("wlg", "Wellington", "NZ", Oceania, -41.2866, 174.7756, 0.4),
    city!("adl", "Adelaide", "AU", Oceania, -34.9285, 138.6007, 1.4),
];

/// Looks a city up by its code.
pub fn by_code(code: &str) -> Option<&'static City> {
    CITIES.iter().find(|c| c.code == code)
}

/// Total population of the table (millions).
pub fn total_population_m() -> f64 {
    CITIES.iter().map(|c| c.population_m).sum()
}

/// Cities on a continent, in table order.
pub fn on_continent(cont: Continent) -> impl Iterator<Item = &'static City> {
    CITIES.iter().filter(move |c| c.continent == cont)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_lowercase() {
        let mut codes: Vec<&str> = CITIES.iter().map(|c| c.code).collect();
        codes.sort_unstable();
        let before = codes.len();
        codes.dedup();
        assert_eq!(codes.len(), before, "duplicate city code");
        for c in CITIES {
            assert_eq!(c.code.len(), 3);
            assert!(c.code.chars().all(|ch| ch.is_ascii_lowercase()));
        }
    }

    #[test]
    fn coordinates_in_range() {
        for c in CITIES {
            assert!(c.lat.abs() <= 90.0, "{}", c.name);
            assert!(c.lon.abs() <= 180.0, "{}", c.name);
            assert!(c.population_m > 0.0);
        }
    }

    #[test]
    fn has_all_continents_and_reasonable_size() {
        for cont in Continent::ALL {
            assert!(on_continent(cont).count() >= 5, "{}", cont.name());
        }
        assert!(CITIES.len() >= 110, "table has {} cities", CITIES.len());
    }

    #[test]
    fn lookup_by_code() {
        assert_eq!(by_code("ams").unwrap().name, "Amsterdam");
        assert!(by_code("zzz").is_none());
    }

    #[test]
    fn total_population_plausible() {
        let t = total_population_m();
        // Order of magnitude: hundreds of millions up to ~1B in metros.
        assert!(t > 500.0 && t < 2000.0, "total {t}");
    }
}
