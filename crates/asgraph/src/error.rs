//! Error types for topology construction and dataset parsing.

use std::fmt;

/// Errors produced while building or parsing an AS-level topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A dataset line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The same AS pair was declared with two contradictory relationships.
    ConflictingRelationship {
        /// Lower-numbered AS of the pair.
        a: u32,
        /// Higher-numbered AS of the pair.
        b: u32,
        /// Relationship seen first.
        first: &'static str,
        /// Conflicting relationship seen later.
        second: &'static str,
    },
    /// A link connects an AS to itself, which the AS-level model forbids.
    SelfLoop {
        /// The offending AS.
        asn: u32,
    },
    /// An AS referenced by an operation is not present in the graph.
    UnknownAs {
        /// The missing AS.
        asn: u32,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::ConflictingRelationship { a, b, first, second } => write!(
                f,
                "conflicting relationship for AS{a}-AS{b}: declared both {first} and {second}"
            ),
            GraphError::SelfLoop { asn } => write!(f, "self-loop on AS{asn}"),
            GraphError::UnknownAs { asn } => write!(f, "AS{asn} is not in the graph"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::Parse { line: 7, message: "bad field".into() };
        assert_eq!(e.to_string(), "parse error on line 7: bad field");
        let e = GraphError::ConflictingRelationship { a: 1, b: 2, first: "p2c", second: "p2p" };
        assert!(e.to_string().contains("AS1-AS2"));
        let e = GraphError::SelfLoop { asn: 5 };
        assert!(e.to_string().contains("AS5"));
        let e = GraphError::UnknownAs { asn: 9 };
        assert!(e.to_string().contains("AS9"));
    }
}
