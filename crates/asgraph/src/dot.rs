//! Graphviz (DOT) export of AS topologies.
//!
//! Small subgraphs — a cloud and its neighborhood, a leak scenario, a
//! Fig. 1-style illustration — are much easier to discuss as pictures.
//! `p2c` links render as directed provider→customer edges; `p2p` links as
//! undirected (dashed) edges.

use crate::graph::{AsGraph, AsId, NodeId, Relationship};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Options for DOT rendering.
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Node labels (defaults to `AS<asn>` when absent).
    pub labels: BTreeMap<u32, String>,
    /// ASes to highlight (doubled border, filled).
    pub highlight: Vec<AsId>,
    /// Restrict output to these ASes and the links among them
    /// (`None` = whole graph — only sensible for small graphs).
    pub restrict_to: Option<Vec<AsId>>,
}

/// Renders the graph (or a restricted subgraph) as DOT.
pub fn to_dot(g: &AsGraph, opts: &DotOptions) -> String {
    let included = |n: NodeId| -> bool {
        match &opts.restrict_to {
            None => true,
            Some(list) => list.contains(&g.asn(n)),
        }
    };
    let mut out = String::new();
    out.push_str("digraph flatnet {\n");
    out.push_str("  rankdir=TB;\n  node [shape=ellipse, fontname=\"monospace\"];\n");
    for n in g.nodes() {
        if !included(n) {
            continue;
        }
        let asn = g.asn(n);
        let label = opts
            .labels
            .get(&asn.0)
            .cloned()
            .unwrap_or_else(|| format!("AS{}", asn.0));
        let style = if opts.highlight.contains(&asn) {
            ", style=filled, fillcolor=lightblue, peripheries=2"
        } else {
            ""
        };
        let _ = writeln!(out, "  n{} [label=\"{}\"{}];", asn.0, escape(&label), style);
    }
    for &(x, y, rel) in g.edges() {
        if !included(x) || !included(y) {
            continue;
        }
        let (a, b) = (g.asn(x).0, g.asn(y).0);
        match rel {
            // Provider above customer: directed edge downward.
            Relationship::P2c => {
                let _ = writeln!(out, "  n{a} -> n{b};");
            }
            Relationship::P2p => {
                let _ = writeln!(out, "  n{a} -> n{b} [dir=none, style=dashed];");
            }
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AsGraphBuilder;

    fn sample() -> AsGraph {
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(1), AsId(2), Relationship::P2c);
        b.add_link(AsId(2), AsId(3), Relationship::P2p);
        b.add_link(AsId(3), AsId(4), Relationship::P2c);
        b.build()
    }

    #[test]
    fn renders_edges_by_relationship() {
        let g = sample();
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.starts_with("digraph flatnet {"));
        assert!(dot.contains("n1 -> n2;"), "{dot}");
        assert!(dot.contains("n2 -> n3 [dir=none, style=dashed];"));
        assert!(dot.contains("n3 -> n4;"));
        assert!(dot.trim_end().ends_with('}'));
        // Every node declared.
        for a in 1..=4 {
            assert!(dot.contains(&format!("n{a} [label=\"AS{a}\"")), "{dot}");
        }
    }

    #[test]
    fn labels_highlights_and_restriction() {
        let g = sample();
        let mut opts = DotOptions::default();
        opts.labels.insert(2, "Goo\"gle".into());
        opts.highlight.push(AsId(2));
        opts.restrict_to = Some(vec![AsId(1), AsId(2), AsId(3)]);
        let dot = to_dot(&g, &opts);
        assert!(dot.contains("label=\"Goo\\\"gle\""), "{dot}");
        assert!(dot.contains("fillcolor=lightblue"));
        // AS 4 and the 3->4 link are excluded.
        assert!(!dot.contains("n4"));
        assert!(!dot.contains("n3 -> n4"));
        assert!(dot.contains("n2 -> n3"));
    }

    #[test]
    fn empty_graph() {
        let g = AsGraphBuilder::new().build();
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.contains("digraph"));
        assert!(!dot.contains("->"));
    }
}
