//! Topology health checks.
//!
//! A structurally broken topology — a Tier-1 "clique" that isn't one,
//! relationship conflicts, a graph that is mostly disconnected — makes
//! every downstream analysis quietly wrong. [`validate_topology`] runs a
//! battery of checks and grades each finding by [`Severity`], so
//! pipelines can refuse to run (or knowingly degrade) *before* paying
//! for route propagation.
//!
//! Checks:
//!
//! * **empty-graph** — no ASes at all (critical).
//! * **tier1-clique** — every pair of Tier-1 ASes present in the graph
//!   must peer (the defining property of the clique); missing peerings
//!   are critical because valley-free reachability through the core
//!   depends on them.
//! * **tier-membership** — tier-list members that don't exist in the
//!   graph (warning: the lists and the topology disagree).
//! * **self-loops** — an AS linked to itself (critical; should be
//!   impossible after parsing, so its presence means corruption).
//! * **relationship-conflicts** — links declared with contradictory
//!   relationships during construction (warning; first declaration won).
//! * **orphaned-ases** — degree-0 ASes (info; they can't route at all).
//! * **disconnected** — ASes outside the largest connected component
//!   (warning above a configurable fraction, info otherwise).
//! * **degree-anomalies** — ASes whose degree exceeds an outlier
//!   threshold relative to the mean (info; real Internets have heavy
//!   tails, but a synthetic or corrupted dataset may not).

use crate::graph::{AsGraph, AsId, NeighborKind, RelConflict};
use std::collections::VecDeque;
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Noteworthy but harmless.
    Info,
    /// Suspicious; results may be skewed.
    Warning,
    /// The topology is unfit for analysis.
    Critical,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        })
    }
}

/// One graded finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthCheck {
    /// Stable check identifier (e.g. `tier1-clique`).
    pub name: &'static str,
    /// Grade.
    pub severity: Severity,
    /// Human-readable description of what was found.
    pub message: String,
    /// Example ASes involved (capped at [`ValidateOptions::max_listed`]).
    pub affected: Vec<AsId>,
}

impl fmt::Display for HealthCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.severity, self.name, self.message)
    }
}

/// The result of [`validate_topology`]: zero or more graded findings.
/// No findings means a clean bill of health.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// All findings, in check order.
    pub checks: Vec<HealthCheck>,
}

impl HealthReport {
    /// The worst severity present, if any finding exists.
    pub fn worst(&self) -> Option<Severity> {
        self.checks.iter().map(|c| c.severity).max()
    }

    /// True when nothing critical was found.
    pub fn is_usable(&self) -> bool {
        self.worst() != Some(Severity::Critical)
    }

    /// True when nothing at all was found.
    pub fn is_clean(&self) -> bool {
        self.checks.is_empty()
    }

    /// Findings at exactly `severity`.
    pub fn at(&self, severity: Severity) -> impl Iterator<Item = &HealthCheck> {
        self.checks.iter().filter(move |c| c.severity == severity)
    }

    /// Multi-line human summary.
    pub fn render(&self) -> String {
        if self.is_clean() {
            return "topology healthy: all checks passed".to_string();
        }
        let mut out = String::new();
        for c in &self.checks {
            out.push_str(&c.to_string());
            if !c.affected.is_empty() {
                let list: Vec<String> = c.affected.iter().map(|a| a.to_string()).collect();
                out.push_str(&format!(" [{}]", list.join(", ")));
            }
            out.push('\n');
        }
        out
    }

    fn push(
        &mut self,
        name: &'static str,
        severity: Severity,
        message: String,
        affected: Vec<AsId>,
    ) {
        self.checks.push(HealthCheck { name, severity, message, affected });
    }
}

/// Tuning for [`validate_topology`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidateOptions {
    /// Maximum number of example ASes listed per finding.
    pub max_listed: usize,
    /// Fraction of ASes allowed outside the largest connected component
    /// before the `disconnected` finding escalates from info to warning.
    pub max_disconnected_fraction: f64,
    /// A node whose degree exceeds `mean_degree * degree_anomaly_factor`
    /// (and is at least 16) is flagged as a degree anomaly.
    pub degree_anomaly_factor: f64,
}

impl Default for ValidateOptions {
    fn default() -> Self {
        ValidateOptions {
            max_listed: 8,
            max_disconnected_fraction: 0.01,
            degree_anomaly_factor: 50.0,
        }
    }
}

/// Runs every health check against `g`.
///
/// `tier1`/`tier2` are the *declared* tier lists (pass empty slices when
/// unknown; the tier checks are skipped). `conflicts` is what the
/// builder recorded (see `AsGraphBuilder::conflicts`); pass `&[]` when
/// the graph didn't come from a tracked builder.
pub fn validate_topology(
    g: &AsGraph,
    tier1: &[AsId],
    tier2: &[AsId],
    conflicts: &[RelConflict],
    opts: &ValidateOptions,
) -> HealthReport {
    let mut report = HealthReport::default();
    let cap = |mut v: Vec<AsId>| {
        v.truncate(opts.max_listed);
        v
    };

    if g.is_empty() {
        report.push("empty-graph", Severity::Critical, "the topology has no ASes".into(), vec![]);
        return report;
    }

    // tier-membership: declared tier members missing from the graph.
    let missing_members: Vec<AsId> = tier1
        .iter()
        .chain(tier2)
        .copied()
        .filter(|&a| g.index_of(a).is_none())
        .collect();
    if !missing_members.is_empty() {
        report.push(
            "tier-membership",
            Severity::Warning,
            format!(
                "{} tier-list member(s) are not present in the graph",
                missing_members.len()
            ),
            cap(missing_members),
        );
    }

    // tier1-clique: every present pair must peer.
    let t1_nodes: Vec<_> = tier1.iter().filter_map(|&a| g.index_of(a)).collect();
    let mut broken_pairs = 0usize;
    let mut broken_examples: Vec<AsId> = Vec::new();
    for (i, &a) in t1_nodes.iter().enumerate() {
        for &b in &t1_nodes[i + 1..] {
            if g.kind_between(a, b) != Some(NeighborKind::Peer) {
                broken_pairs += 1;
                for n in [a, b] {
                    let asn = g.asn(n);
                    if !broken_examples.contains(&asn) {
                        broken_examples.push(asn);
                    }
                }
            }
        }
    }
    if broken_pairs > 0 {
        let total = t1_nodes.len() * t1_nodes.len().saturating_sub(1) / 2;
        report.push(
            "tier1-clique",
            Severity::Critical,
            format!("{broken_pairs} of {total} Tier-1 pairs do not peer; the clique is broken"),
            cap(broken_examples),
        );
    }

    // self-loops: impossible after parsing, so finding one means memory
    // corruption or a hand-built graph gone wrong.
    let loops: Vec<AsId> =
        g.edges().iter().filter(|(x, y, _)| x == y).map(|&(x, _, _)| g.asn(x)).collect();
    if !loops.is_empty() {
        report.push(
            "self-loops",
            Severity::Critical,
            format!("{} self-loop link(s) present", loops.len()),
            cap(loops),
        );
    }

    // relationship-conflicts from the builder.
    if !conflicts.is_empty() {
        let mut affected: Vec<AsId> = Vec::new();
        for c in conflicts {
            for a in [c.a, c.b] {
                if !affected.contains(&a) {
                    affected.push(a);
                }
            }
        }
        report.push(
            "relationship-conflicts",
            Severity::Warning,
            format!(
                "{} link(s) declared with contradictory relationships (first declaration kept); first: {}",
                conflicts.len(),
                conflicts[0]
            ),
            cap(affected),
        );
    }

    // orphaned-ases: degree 0.
    let orphans: Vec<AsId> =
        g.nodes().filter(|&n| g.degree(n) == 0).map(|n| g.asn(n)).collect();
    if !orphans.is_empty() {
        report.push(
            "orphaned-ases",
            Severity::Info,
            format!("{} AS(es) have no links at all", orphans.len()),
            cap(orphans),
        );
    }

    // disconnected: nodes outside the largest connected component.
    let outside = nodes_outside_largest_component(g);
    if !outside.is_empty() {
        let frac = outside.len() as f64 / g.len() as f64;
        let severity = if frac > opts.max_disconnected_fraction {
            Severity::Warning
        } else {
            Severity::Info
        };
        report.push(
            "disconnected",
            severity,
            format!(
                "{} AS(es) ({:.2}% of the graph) are outside the largest connected component",
                outside.len(),
                frac * 100.0
            ),
            cap(outside.into_iter().map(|n| g.asn(n)).collect()),
        );
    }

    // degree-anomalies.
    let mean = 2.0 * g.edge_count() as f64 / g.len() as f64;
    let threshold = (mean * opts.degree_anomaly_factor).max(16.0);
    let anomalies: Vec<AsId> = g
        .nodes()
        .filter(|&n| g.degree(n) as f64 > threshold)
        .map(|n| g.asn(n))
        .collect();
    if !anomalies.is_empty() {
        report.push(
            "degree-anomalies",
            Severity::Info,
            format!(
                "{} AS(es) have degree above {:.0} ({}x the mean of {:.1})",
                anomalies.len(),
                threshold,
                opts.degree_anomaly_factor,
                mean
            ),
            cap(anomalies),
        );
    }

    report
}

/// All nodes not in the largest connected component (relationship
/// classes ignored; links treated as undirected).
fn nodes_outside_largest_component(g: &AsGraph) -> Vec<crate::graph::NodeId> {
    let n = g.len();
    let mut component = vec![u32::MAX; n];
    let mut sizes: Vec<usize> = Vec::new();
    for start in g.nodes() {
        if component[start.idx()] != u32::MAX {
            continue;
        }
        let id = sizes.len() as u32;
        let mut size = 0usize;
        let mut queue = VecDeque::from([start]);
        component[start.idx()] = id;
        while let Some(v) = queue.pop_front() {
            size += 1;
            for (w, _) in g.neighbors(v) {
                if component[w.idx()] == u32::MAX {
                    component[w.idx()] = id;
                    queue.push_back(w);
                }
            }
        }
        sizes.push(size);
    }
    let largest = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| s)
        .map(|(i, _)| i as u32)
        .unwrap_or(0);
    g.nodes().filter(|v| component[v.idx()] != largest).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AsGraphBuilder, Relationship};

    /// Three Tier-1s fully meshed, each providing a customer; customers
    /// peer in a ring.
    fn healthy() -> (AsGraph, Vec<AsId>, Vec<AsId>) {
        let mut b = AsGraphBuilder::new();
        let t1 = [AsId(1), AsId(2), AsId(3)];
        for (i, &a) in t1.iter().enumerate() {
            for &c in &t1[i + 1..] {
                b.add_link(a, c, Relationship::P2p);
            }
        }
        for (i, &a) in t1.iter().enumerate() {
            b.add_link(a, AsId(10 + i as u32), Relationship::P2c);
        }
        b.add_link(AsId(10), AsId(11), Relationship::P2p);
        b.add_link(AsId(11), AsId(12), Relationship::P2p);
        (b.build(), t1.to_vec(), vec![AsId(10), AsId(11), AsId(12)])
    }

    #[test]
    fn healthy_topology_is_clean() {
        let (g, t1, t2) = healthy();
        let r = validate_topology(&g, &t1, &t2, &[], &ValidateOptions::default());
        assert!(r.is_clean(), "{}", r.render());
        assert!(r.is_usable());
        assert_eq!(r.worst(), None);
    }

    #[test]
    fn broken_clique_is_critical() {
        let mut b = AsGraphBuilder::new();
        // 1-2 peer, but 3 is not meshed with either.
        b.add_link(AsId(1), AsId(2), Relationship::P2p);
        b.add_link(AsId(3), AsId(10), Relationship::P2c);
        b.add_link(AsId(1), AsId(10), Relationship::P2c);
        b.add_link(AsId(2), AsId(10), Relationship::P2c);
        let g = b.build();
        let t1 = vec![AsId(1), AsId(2), AsId(3)];
        let r = validate_topology(&g, &t1, &[], &[], &ValidateOptions::default());
        let clique = r.checks.iter().find(|c| c.name == "tier1-clique").expect("flagged");
        assert_eq!(clique.severity, Severity::Critical);
        assert!(clique.message.contains("2 of 3"), "{}", clique.message);
        assert!(!r.is_usable());
    }

    #[test]
    fn missing_tier_member_is_flagged() {
        let (g, mut t1, t2) = healthy();
        t1.push(AsId(999));
        let r = validate_topology(&g, &t1, &t2, &[], &ValidateOptions::default());
        let m = r.checks.iter().find(|c| c.name == "tier-membership").expect("flagged");
        assert_eq!(m.severity, Severity::Warning);
        assert_eq!(m.affected, vec![AsId(999)]);
        // A missing member can't break the clique among present members.
        assert!(r.checks.iter().all(|c| c.name != "tier1-clique"), "{}", r.render());
    }

    #[test]
    fn relationship_conflicts_surface_as_warning() {
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(1), AsId(2), Relationship::P2c);
        b.add_link(AsId(1), AsId(2), Relationship::P2p); // conflict
        let g = b.build();
        let r = validate_topology(&g, &[], &[], b.conflicts(), &ValidateOptions::default());
        let c = r.checks.iter().find(|c| c.name == "relationship-conflicts").expect("flagged");
        assert_eq!(c.severity, Severity::Warning);
        assert!(c.message.contains("contradictory"), "{}", c.message);
        assert!(r.is_usable(), "conflicts alone don't make the graph unusable");
    }

    #[test]
    fn orphans_and_disconnection_detected() {
        let (g, t1, t2) = healthy();
        let mut b = g.to_builder();
        b.add_isolated(AsId(500));
        b.add_link(AsId(600), AsId(601), Relationship::P2p); // island
        let g = b.build();
        let r = validate_topology(&g, &t1, &t2, &[], &ValidateOptions::default());
        let orphans = r.checks.iter().find(|c| c.name == "orphaned-ases").expect("flagged");
        assert_eq!(orphans.affected, vec![AsId(500)]);
        let disc = r.checks.iter().find(|c| c.name == "disconnected").expect("flagged");
        // 3 of 9 nodes outside the main component: way above 1%.
        assert_eq!(disc.severity, Severity::Warning);
        assert!(disc.message.contains("3 AS(es)"), "{}", disc.message);
    }

    #[test]
    fn empty_graph_is_critical() {
        let r = validate_topology(
            &AsGraph::empty(),
            &[],
            &[],
            &[],
            &ValidateOptions::default(),
        );
        assert_eq!(r.worst(), Some(Severity::Critical));
        assert!(!r.is_usable());
    }

    #[test]
    fn degree_anomaly_detected_with_low_factor() {
        let mut b = AsGraphBuilder::new();
        // A star: hub with 40 spokes, plus a few spoke-spoke links.
        for i in 0..40 {
            b.add_link(AsId(1), AsId(100 + i), Relationship::P2c);
        }
        b.add_link(AsId(100), AsId(101), Relationship::P2p);
        let g = b.build();
        let opts = ValidateOptions { degree_anomaly_factor: 8.0, ..Default::default() };
        let r = validate_topology(&g, &[], &[], &[], &opts);
        let a = r.checks.iter().find(|c| c.name == "degree-anomalies").expect("flagged");
        assert_eq!(a.affected, vec![AsId(1)]);
        assert_eq!(a.severity, Severity::Info);
    }

    #[test]
    fn severity_ordering_and_render() {
        assert!(Severity::Critical > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        let (g, t1, t2) = healthy();
        let r = validate_topology(&g, &t1, &t2, &[], &ValidateOptions::default());
        assert!(r.render().contains("healthy"));
    }
}
