//! Shared fault-tolerant ingestion primitives.
//!
//! Real measurement data — CAIDA relationship files, MRT RIBs, scamper
//! text and warts archives, prefix-origin feeds — is dirty. Every
//! loader in the workspace accepts a [`ParseOptions`] deciding what to
//! do about that:
//!
//! * **strict** (the default, and the historical behaviour): the first
//!   malformed record aborts the parse with that record's error.
//! * **lenient**: malformed records are skipped and tallied in a
//!   [`ParseDiagnostics`], up to a bounded error budget
//!   ([`ParseOptions::max_errors`]); blowing the budget aborts the
//!   parse, so a fundamentally broken input cannot silently degrade
//!   into an empty dataset.
//!
//! Binary formats can only skip a record when the stream can be
//! resynchronized (the record's length is known); framing-level
//! corruption stays fatal in both modes.

use std::fmt;

/// Where in the input a malformed record was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordLocation {
    /// 1-based line number (text formats).
    Line(usize),
    /// Byte offset (binary formats).
    Byte(usize),
    /// 0-based record ordinal (framed formats).
    Record(usize),
}

impl fmt::Display for RecordLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordLocation::Line(n) => write!(f, "line {n}"),
            RecordLocation::Byte(n) => write!(f, "byte {n}"),
            RecordLocation::Record(n) => write!(f, "record {n}"),
        }
    }
}

/// One skipped record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIssue {
    /// Where the record was.
    pub location: RecordLocation,
    /// Why it was dropped.
    pub message: String,
}

impl fmt::Display for ParseIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.location, self.message)
    }
}

/// Strictness and error budget for a single parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseOptions {
    /// Fail on the first malformed record (historical behaviour).
    pub strict: bool,
    /// In lenient mode, the number of malformed records tolerated
    /// before the parse aborts anyway.
    pub max_errors: usize,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions::strict()
    }
}

impl ParseOptions {
    /// Abort on the first malformed record.
    pub fn strict() -> Self {
        ParseOptions { strict: true, max_errors: 0 }
    }

    /// Skip malformed records, tolerating up to 1000 of them.
    pub fn lenient() -> Self {
        ParseOptions { strict: false, max_errors: 1000 }
    }

    /// Same mode with a different error budget.
    pub fn with_max_errors(mut self, max_errors: usize) -> Self {
        self.max_errors = max_errors;
        self
    }

    /// Whether a parse that has already dropped `dropped` records may
    /// drop one more.
    pub fn budget_allows(&self, dropped: usize) -> bool {
        !self.strict && dropped < self.max_errors
    }

    /// Standard message for an exhausted error budget.
    pub fn budget_exhausted_message(&self, last: &ParseIssue) -> String {
        format!(
            "error budget exhausted after {} malformed records (max {}); last: {}",
            self.max_errors + 1,
            self.max_errors,
            last
        )
    }
}

/// Tally of what a lenient parse dropped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParseDiagnostics {
    /// Records parsed successfully.
    pub records_ok: usize,
    /// Malformed records that were skipped.
    pub issues: Vec<ParseIssue>,
}

impl ParseDiagnostics {
    /// A clean slate.
    pub fn new() -> Self {
        ParseDiagnostics::default()
    }

    /// Notes one good record.
    pub fn record_ok(&mut self) {
        self.records_ok += 1;
    }

    /// Notes one skipped record.
    pub fn record_dropped(&mut self, location: RecordLocation, message: impl Into<String>) {
        self.issues.push(ParseIssue { location, message: message.into() });
    }

    /// Number of records dropped.
    pub fn dropped(&self) -> usize {
        self.issues.len()
    }

    /// True if nothing was dropped.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// Publishes this tally to the global metric registry under the shared
    /// `parse.<format>.records_ok` / `parse.<format>.records_dropped`
    /// counter names. Parsers call this once per completed parse.
    pub fn publish(&self, format: &str) {
        flatnet_obs::record_parse(format, self.records_ok as u64, self.dropped() as u64);
    }

    /// One-line human summary, e.g. for CLI output.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            format!("{} records, no errors", self.records_ok)
        } else {
            format!(
                "{} records ok, {} dropped (first: {})",
                self.records_ok,
                self.dropped(),
                self.issues[0]
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_never_allows_drops() {
        let o = ParseOptions::strict();
        assert!(!o.budget_allows(0));
        assert!(o.strict);
    }

    #[test]
    fn lenient_budget_is_bounded() {
        let o = ParseOptions::lenient().with_max_errors(2);
        assert!(o.budget_allows(0));
        assert!(o.budget_allows(1));
        assert!(!o.budget_allows(2));
    }

    #[test]
    fn diagnostics_tally_and_summarize() {
        let mut d = ParseDiagnostics::new();
        d.record_ok();
        d.record_ok();
        assert!(d.is_clean());
        assert_eq!(d.summary(), "2 records, no errors");
        d.record_dropped(RecordLocation::Line(7), "bad ASN");
        assert_eq!(d.dropped(), 1);
        assert_eq!(d.records_ok, 2);
        let s = d.summary();
        assert!(s.contains("2 records ok") && s.contains("1 dropped") && s.contains("line 7"), "{s}");
    }

    #[test]
    fn locations_render() {
        assert_eq!(RecordLocation::Line(3).to_string(), "line 3");
        assert_eq!(RecordLocation::Byte(12).to_string(), "byte 12");
        assert_eq!(RecordLocation::Record(0).to_string(), "record 0");
    }
}
