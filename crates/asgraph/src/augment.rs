//! Topology augmentation with traceroute-discovered cloud peers (§4.1).
//!
//! BGP feeds miss up to 90% of edge peering links. The paper's methodology
//! adds every cloud neighbor discovered by traceroutes as a **p2p** link —
//! "Since BGP feeds have a high success rate identifying c2p links but miss
//! nearly all edge peer links, we can safely assume newly identified links
//! are peer links. When a connection identified in a traceroute already
//! exists in the CAIDA dataset, we do not modify the previously identified
//! link type."

use crate::graph::{AsGraph, AsId, Relationship};

/// What happened during one augmentation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AugmentReport {
    /// Peer links newly added to the topology.
    pub added: usize,
    /// Neighbor pairs already present (left untouched, whatever their type).
    pub already_present: usize,
    /// Neighbors whose ASN was not previously in the graph at all (they are
    /// added as new nodes with the single peer link).
    pub new_ases: usize,
    /// The cloud's neighbor count in the original graph.
    pub neighbors_before: usize,
    /// The cloud's neighbor count after augmentation.
    pub neighbors_after: usize,
}

/// Adds traceroute-inferred `cloud`→neighbor peerings to `g`.
///
/// Returns the augmented graph and a report. Neighbor entries equal to the
/// cloud itself are ignored. The input graph is not required to contain the
/// cloud AS already (it will after augmentation, if `peers` is non-empty).
pub fn augment_with_peers(g: &AsGraph, cloud: AsId, peers: &[AsId]) -> (AsGraph, AugmentReport) {
    let mut b = g.to_builder();
    let mut report = AugmentReport {
        neighbors_before: g.index_of(cloud).map(|n| g.degree(n)).unwrap_or(0),
        ..AugmentReport::default()
    };
    for &p in peers {
        if p == cloud {
            continue;
        }
        if g.index_of(p).is_none() {
            report.new_ases += 1;
        }
        if b.contains_link(cloud, p) {
            report.already_present += 1;
        } else {
            b.add_link(cloud, p, Relationship::P2p);
            report.added += 1;
        }
    }
    let out = b.build();
    report.neighbors_after = out.index_of(cloud).map(|n| out.degree(n)).unwrap_or(0);
    (out, report)
}

/// Augments one graph with several clouds' inferred peer sets in one pass.
///
/// Equivalent to chaining [`augment_with_peers`] once per cloud; returns the
/// final graph and per-cloud reports in input order.
pub fn augment_many(g: &AsGraph, sets: &[(AsId, Vec<AsId>)]) -> (AsGraph, Vec<AugmentReport>) {
    let mut current = g.clone();
    let mut reports = Vec::with_capacity(sets.len());
    for (cloud, peers) in sets {
        let (next, rep) = augment_with_peers(&current, *cloud, peers);
        current = next;
        reports.push(rep);
    }
    (current, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AsGraphBuilder, NeighborKind};

    fn base() -> AsGraph {
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(100), AsId(15169), Relationship::P2c); // provider of cloud
        b.add_link(AsId(100), AsId(200), Relationship::P2c);
        b.add_link(AsId(100), AsId(300), Relationship::P2c);
        b.build()
    }

    #[test]
    fn adds_new_peers_as_p2p() {
        let g = base();
        let (g2, rep) = augment_with_peers(&g, AsId(15169), &[AsId(200), AsId(300)]);
        assert_eq!(rep.added, 2);
        assert_eq!(rep.already_present, 0);
        assert_eq!(rep.new_ases, 0);
        assert_eq!(rep.neighbors_before, 1);
        assert_eq!(rep.neighbors_after, 3);
        let cloud = g2.index_of(AsId(15169)).unwrap();
        let n200 = g2.index_of(AsId(200)).unwrap();
        assert_eq!(g2.kind_between(cloud, n200), Some(NeighborKind::Peer));
    }

    #[test]
    fn existing_links_keep_their_type() {
        let g = base();
        // AS 100 is already the cloud's provider; traceroute "rediscovers" it.
        let (g2, rep) = augment_with_peers(&g, AsId(15169), &[AsId(100)]);
        assert_eq!(rep.added, 0);
        assert_eq!(rep.already_present, 1);
        let cloud = g2.index_of(AsId(15169)).unwrap();
        let n100 = g2.index_of(AsId(100)).unwrap();
        // Still provider, NOT downgraded to peer.
        assert_eq!(g2.kind_between(cloud, n100), Some(NeighborKind::Provider));
    }

    #[test]
    fn unknown_neighbors_become_new_nodes() {
        let g = base();
        let (g2, rep) = augment_with_peers(&g, AsId(15169), &[AsId(99999)]);
        assert_eq!(rep.new_ases, 1);
        assert_eq!(rep.added, 1);
        assert!(g2.index_of(AsId(99999)).is_some());
    }

    #[test]
    fn self_peering_ignored() {
        let g = base();
        let (_, rep) = augment_with_peers(&g, AsId(15169), &[AsId(15169)]);
        assert_eq!(rep.added, 0);
        assert_eq!(rep.already_present, 0);
    }

    #[test]
    fn augment_many_applies_sequentially() {
        let g = base();
        let sets = vec![
            (AsId(15169), vec![AsId(200)]),
            (AsId(8075), vec![AsId(200), AsId(300)]),
        ];
        let (g2, reps) = augment_many(&g, &sets);
        assert_eq!(reps.len(), 2);
        assert_eq!(reps[0].added, 1);
        assert_eq!(reps[1].added, 2);
        assert_eq!(reps[1].new_ases, 0); // 8075 itself is new but neighbors are not counted as such
        let ms = g2.index_of(AsId(8075)).unwrap();
        assert_eq!(g2.degree(ms), 2);
    }

    #[test]
    fn duplicate_peer_entries_counted_once() {
        let g = base();
        let (g2, rep) = augment_with_peers(&g, AsId(15169), &[AsId(200), AsId(200)]);
        assert_eq!(rep.added, 1);
        assert_eq!(rep.already_present, 1);
        let cloud = g2.index_of(AsId(15169)).unwrap();
        assert_eq!(g2.degree(cloud), 2);
    }
}
