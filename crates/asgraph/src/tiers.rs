//! Tier-1 / Tier-2 ISP sets and clique inference.
//!
//! Hierarchy-free reachability is defined relative to two sets of large
//! transit providers: the **Tier-1 clique** (mutually peering, transit-free
//! ASes at the hierarchy's apex) and the **Tier-2 ISPs** (large regional or
//! global transit providers one step below). The paper takes both lists from
//! prior work (ProbLink / AS-Rank); this module lets callers supply explicit
//! lists (e.g. ground truth from the synthetic generator) and also provides
//! an AS-Rank-style inference for real datasets where no list is available.

use crate::cone::{customer_cone_sizes, transit_degree};
use crate::graph::{AsGraph, AsId, NodeId};

/// The Tier-1 and Tier-2 ISP sets used to constrain reachability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tiers {
    tier1: Vec<NodeId>,
    tier2: Vec<NodeId>,
}

impl Tiers {
    /// Builds tier sets from explicit AS lists, dropping ASes not present in
    /// the graph (real-world lists routinely contain ASes that a particular
    /// snapshot lacks) and deduplicating. An AS listed in both tiers is kept
    /// only in Tier-1.
    pub fn from_lists(g: &AsGraph, tier1: &[AsId], tier2: &[AsId]) -> Self {
        let mut t1: Vec<NodeId> = tier1.iter().filter_map(|&a| g.index_of(a)).collect();
        t1.sort_unstable();
        t1.dedup();
        let mut t2: Vec<NodeId> = tier2
            .iter()
            .filter_map(|&a| g.index_of(a))
            .filter(|n| t1.binary_search(n).is_err())
            .collect();
        t2.sort_unstable();
        t2.dedup();
        Tiers { tier1: t1, tier2: t2 }
    }

    /// Tier-1 members, sorted by node index.
    pub fn tier1(&self) -> &[NodeId] {
        &self.tier1
    }

    /// Tier-2 members, sorted by node index.
    pub fn tier2(&self) -> &[NodeId] {
        &self.tier2
    }

    /// Whether `n` is a Tier-1 ISP.
    pub fn is_tier1(&self, n: NodeId) -> bool {
        self.tier1.binary_search(&n).is_ok()
    }

    /// Whether `n` is a Tier-2 ISP.
    pub fn is_tier2(&self, n: NodeId) -> bool {
        self.tier2.binary_search(&n).is_ok()
    }

    /// Tier assignment of `n`.
    pub fn assignment(&self, n: NodeId) -> TierAssignment {
        if self.is_tier1(n) {
            TierAssignment::Tier1
        } else if self.is_tier2(n) {
            TierAssignment::Tier2
        } else {
            TierAssignment::Other
        }
    }
}

/// Where an AS sits relative to the transit hierarchy's top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TierAssignment {
    /// Member of the Tier-1 clique.
    Tier1,
    /// Large transit provider below the clique.
    Tier2,
    /// Everything else (clouds, content, access, enterprise, stubs, ...).
    Other,
}

/// Infers the Tier-1 clique AS-Rank style.
///
/// Candidates are the ASes with the highest transit degree; the clique is
/// grown greedily in that order, admitting an AS only if it links (peers — a
/// true clique member never buys transit, so any link between members is a
/// peering) with every AS already admitted and has no transit providers
/// itself. `max_candidates` bounds the search (AS-Rank uses a similar
/// cutoff); the returned clique is sorted by node index.
pub fn infer_clique(g: &AsGraph, max_candidates: usize) -> Vec<NodeId> {
    let mut candidates: Vec<NodeId> = g.nodes().collect();
    // Highest transit degree first; ties broken by ASN for determinism.
    candidates.sort_by_key(|&n| (std::cmp::Reverse(transit_degree(g, n)), g.asn(n)));
    candidates.truncate(max_candidates);

    let mut clique: Vec<NodeId> = Vec::new();
    for &cand in &candidates {
        if !g.providers(cand).is_empty() {
            continue; // A Tier-1 never buys transit.
        }
        let connected_to_all = clique
            .iter()
            .all(|&m| g.peers(cand).binary_search(&m).is_ok());
        if connected_to_all {
            clique.push(cand);
        }
    }
    clique.sort_unstable();
    clique
}

/// Infers a full [`Tiers`] assignment: the Tier-1 clique via
/// [`infer_clique`], then the `tier2_count` largest remaining ASes by
/// customer cone size (the paper's Tier-2s are exactly the big transit
/// sellers below the clique).
pub fn infer_tiers(g: &AsGraph, max_candidates: usize, tier2_count: usize) -> Tiers {
    let tier1 = infer_clique(g, max_candidates);
    let cones = customer_cone_sizes(g);
    let mut rest: Vec<NodeId> = g
        .nodes()
        .filter(|n| tier1.binary_search(n).is_err())
        .collect();
    rest.sort_by_key(|&n| (std::cmp::Reverse(cones[n.idx()]), g.asn(n)));
    let mut tier2: Vec<NodeId> = rest.into_iter().take(tier2_count).collect();
    tier2.sort_unstable();
    Tiers { tier1, tier2 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AsGraphBuilder, Relationship};

    /// Three mutually peering transit-free ASes (1,2,3), each with a chain of
    /// customers; AS 10 is a big Tier-2 under 1 and 2.
    fn hierarchy() -> AsGraph {
        let mut b = AsGraphBuilder::new();
        for (a, x) in [(1, 2), (1, 3), (2, 3)] {
            b.add_link(AsId(a), AsId(x), Relationship::P2p);
        }
        b.add_link(AsId(1), AsId(10), Relationship::P2c);
        b.add_link(AsId(2), AsId(10), Relationship::P2c);
        // AS 10 has many customers, making it the biggest non-clique cone.
        for c in 100..110 {
            b.add_link(AsId(10), AsId(c), Relationship::P2c);
        }
        // Each clique member also has a couple of direct customers.
        b.add_link(AsId(1), AsId(11), Relationship::P2c);
        b.add_link(AsId(2), AsId(12), Relationship::P2c);
        b.add_link(AsId(3), AsId(13), Relationship::P2c);
        b.add_link(AsId(3), AsId(14), Relationship::P2c);
        b.build()
    }

    #[test]
    fn infers_the_clique() {
        let g = hierarchy();
        let clique = infer_clique(&g, 16);
        let asns: Vec<u32> = clique.iter().map(|&n| g.asn(n).0).collect();
        assert_eq!(asns, vec![1, 2, 3]);
    }

    #[test]
    fn clique_excludes_transit_buyers() {
        let g = hierarchy();
        // AS 10 has high transit degree but buys transit: never clique.
        let clique = infer_clique(&g, 100);
        let n10 = g.index_of(AsId(10)).unwrap();
        assert!(!clique.contains(&n10));
    }

    #[test]
    fn infer_tiers_picks_largest_cones_for_tier2() {
        let g = hierarchy();
        let tiers = infer_tiers(&g, 16, 1);
        let n10 = g.index_of(AsId(10)).unwrap();
        assert_eq!(tiers.tier2(), &[n10]);
        assert_eq!(tiers.assignment(n10), TierAssignment::Tier2);
        let n1 = g.index_of(AsId(1)).unwrap();
        assert_eq!(tiers.assignment(n1), TierAssignment::Tier1);
        let n100 = g.index_of(AsId(100)).unwrap();
        assert_eq!(tiers.assignment(n100), TierAssignment::Other);
    }

    #[test]
    fn from_lists_drops_unknown_and_deduplicates() {
        let g = hierarchy();
        let tiers = Tiers::from_lists(
            &g,
            &[AsId(1), AsId(1), AsId(99999)],
            &[AsId(10), AsId(1)], // AS 1 already Tier-1: dropped from Tier-2.
        );
        assert_eq!(tiers.tier1().len(), 1);
        assert_eq!(tiers.tier2().len(), 1);
        let n1 = g.index_of(AsId(1)).unwrap();
        assert!(tiers.is_tier1(n1));
        assert!(!tiers.is_tier2(n1));
    }

    #[test]
    fn empty_graph_yields_empty_tiers() {
        let g = AsGraph::empty();
        assert!(infer_clique(&g, 10).is_empty());
        let t = infer_tiers(&g, 10, 5);
        assert!(t.tier1().is_empty() && t.tier2().is_empty());
    }
}
