//! Parsers and writers for CAIDA AS-relationship datasets.
//!
//! The paper builds its topologies from two CAIDA products:
//!
//! * **serial-1** (`20150901.as-rel.txt`): lines of the form
//!   `<as1>|<as2>|<rel>` where `rel` is `-1` (as1 is the *provider* of as2)
//!   or `0` (peering). Comment lines start with `#`.
//! * **serial-2** (`.as-rel2.txt`): same, with a fourth field naming the
//!   inference source (`bgp`, `mlp`, ...), i.e.
//!   `<as1>|<as2>|<rel>|<source>`. The September 2020 snapshot the paper
//!   uses also incorporates Ark traceroute data through the `mlp` source.
//!
//! Both parsers are tolerant of blank lines and comments, strict about
//! everything else, and report 1-based line numbers on error.

use crate::error::GraphError;
use crate::graph::{AsGraphBuilder, AsId, Relationship};
use crate::ingest::{ParseDiagnostics, ParseOptions, RecordLocation};
use std::io::BufRead;

/// One parsed relationship record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelRecord {
    /// For `P2c`, the provider; otherwise just the first AS on the line.
    pub a: AsId,
    /// For `P2c`, the customer; otherwise the second AS on the line.
    pub b: AsId,
    /// Relationship with `a` oriented as provider when `P2c`.
    pub rel: Relationship,
}

fn parse_rel_line(line: &str, lineno: usize, fields: usize) -> Result<Option<RelRecord>, GraphError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut parts = line.split('|');
    let err = |message: String| GraphError::Parse { line: lineno, message };
    let a: u32 = parts
        .next()
        .ok_or_else(|| err("missing first AS field".into()))?
        .trim()
        .parse()
        .map_err(|e| err(format!("bad first ASN: {e}")))?;
    let b: u32 = parts
        .next()
        .ok_or_else(|| err("missing second AS field".into()))?
        .trim()
        .parse()
        .map_err(|e| err(format!("bad second ASN: {e}")))?;
    let rel_field = parts.next().ok_or_else(|| err("missing relationship field".into()))?.trim();
    let rel = match rel_field {
        "-1" => Relationship::P2c,
        "0" => Relationship::P2p,
        other => return Err(err(format!("unknown relationship code {other:?}"))),
    };
    // serial-2 carries a trailing source field; serial-1 must not.
    let extra = parts.count();
    let expected_extra = fields - 3;
    if extra != expected_extra {
        return Err(err(format!(
            "expected {fields} fields, got {}",
            3 + extra
        )));
    }
    if a == b {
        return Err(err(format!("self-loop on AS{a}")));
    }
    Ok(Some(RelRecord { a: AsId(a), b: AsId(b), rel }))
}

/// Parses a CAIDA **serial-1** AS-relationship file (3 fields per line).
pub fn parse_serial1<R: BufRead>(reader: R) -> Result<AsGraphBuilder, GraphError> {
    parse_with_fields(reader, 3, &ParseOptions::strict()).map(|(b, _)| b)
}

/// Parses a CAIDA **serial-2** AS-relationship file (4 fields per line).
pub fn parse_serial2<R: BufRead>(reader: R) -> Result<AsGraphBuilder, GraphError> {
    parse_with_fields(reader, 4, &ParseOptions::strict()).map(|(b, _)| b)
}

/// [`parse_serial1`] with explicit strictness; lenient mode skips
/// malformed lines (up to the error budget) and reports them in the
/// returned [`ParseDiagnostics`].
pub fn parse_serial1_with<R: BufRead>(
    reader: R,
    opts: &ParseOptions,
) -> Result<(AsGraphBuilder, ParseDiagnostics), GraphError> {
    parse_with_fields(reader, 3, opts)
}

/// [`parse_serial2`] with explicit strictness (see [`parse_serial1_with`]).
pub fn parse_serial2_with<R: BufRead>(
    reader: R,
    opts: &ParseOptions,
) -> Result<(AsGraphBuilder, ParseDiagnostics), GraphError> {
    parse_with_fields(reader, 4, opts)
}

fn parse_with_fields<R: BufRead>(
    reader: R,
    fields: usize,
    opts: &ParseOptions,
) -> Result<(AsGraphBuilder, ParseDiagnostics), GraphError> {
    let mut b = AsGraphBuilder::new();
    let mut diag = ParseDiagnostics::new();
    for (i, line) in reader.lines().enumerate() {
        // I/O errors are not per-record problems; always fatal.
        let line = line.map_err(|e| GraphError::Parse { line: i + 1, message: e.to_string() })?;
        match parse_rel_line(&line, i + 1, fields) {
            Ok(Some(rec)) => {
                diag.record_ok();
                b.add_link(rec.a, rec.b, rec.rel);
            }
            Ok(None) => {}
            Err(e) => {
                if opts.budget_allows(diag.dropped()) {
                    diag.record_dropped(RecordLocation::Line(i + 1), e.to_string());
                } else if opts.strict {
                    return Err(e);
                } else {
                    diag.record_dropped(RecordLocation::Line(i + 1), e.to_string());
                    return Err(GraphError::Parse {
                        line: i + 1,
                        message: opts.budget_exhausted_message(diag.issues.last().unwrap()),
                    });
                }
            }
        }
    }
    diag.publish("caida");
    Ok((b, diag))
}

/// Serializes a graph in serial-1 format (stable, canonical order).
///
/// The output round-trips through [`parse_serial1`]. Isolated ASes cannot be
/// represented by the format and are dropped, matching CAIDA's own files.
pub fn write_serial1(g: &crate::graph::AsGraph) -> String {
    let mut out = String::new();
    out.push_str("# flatnet serial-1 export\n");
    for &(x, y, rel) in g.edges() {
        let (a, b) = (g.asn(x).0, g.asn(y).0);
        let code = match rel {
            Relationship::P2c => -1,
            Relationship::P2p => 0,
        };
        out.push_str(&format!("{a}|{b}|{code}\n"));
    }
    out
}

/// Serializes a graph in serial-2 format with a uniform `bgp` source tag.
pub fn write_serial2(g: &crate::graph::AsGraph) -> String {
    let mut out = String::new();
    out.push_str("# flatnet serial-2 export\n");
    for &(x, y, rel) in g.edges() {
        let (a, b) = (g.asn(x).0, g.asn(y).0);
        let code = match rel {
            Relationship::P2c => -1,
            Relationship::P2p => 0,
        };
        out.push_str(&format!("{a}|{b}|{code}|bgp\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NeighborKind;

    const SERIAL1: &str = "\
# inferred AS relationships
# as1|as2|rel
1|2|-1
2|3|0

3|4|-1
";

    const SERIAL2: &str = "\
# serial-2
1|2|-1|bgp
2|3|0|mlp
3|4|-1|bgp
";

    #[test]
    fn parses_serial1() {
        let g = parse_serial1(SERIAL1.as_bytes()).unwrap().build();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 3);
        let n1 = g.index_of(AsId(1)).unwrap();
        let n2 = g.index_of(AsId(2)).unwrap();
        assert_eq!(g.kind_between(n1, n2), Some(NeighborKind::Customer));
        let n3 = g.index_of(AsId(3)).unwrap();
        assert_eq!(g.kind_between(n2, n3), Some(NeighborKind::Peer));
    }

    #[test]
    fn parses_serial2() {
        let g = parse_serial2(SERIAL2.as_bytes()).unwrap().build();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn serial1_rejects_serial2_lines() {
        let err = parse_serial1("1|2|-1|bgp\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn serial2_rejects_serial1_lines() {
        let err = parse_serial2("1|2|-1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_bad_relationship_code() {
        let err = parse_serial1("1|2|7\n".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown relationship code"), "{msg}");
    }

    #[test]
    fn rejects_bad_asn() {
        let err = parse_serial1("x|2|0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad first ASN"));
        let err = parse_serial1("1|y|0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad second ASN"));
    }

    #[test]
    fn rejects_self_loop_with_line_number() {
        let err = parse_serial1("1|2|0\n5|5|0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn roundtrips_serial1() {
        let g = parse_serial1(SERIAL1.as_bytes()).unwrap().build();
        let text = write_serial1(&g);
        let g2 = parse_serial1(text.as_bytes()).unwrap().build();
        assert_eq!(g.edges(), g2.edges());
    }

    #[test]
    fn roundtrips_serial2() {
        let g = parse_serial2(SERIAL2.as_bytes()).unwrap().build();
        let text = write_serial2(&g);
        let g2 = parse_serial2(text.as_bytes()).unwrap().build();
        assert_eq!(g.edges(), g2.edges());
    }

    #[test]
    fn whitespace_tolerant() {
        let g = parse_serial1("  1 | 2 | -1  \n".as_bytes()).unwrap().build();
        assert_eq!(g.edge_count(), 1);
    }

    const DIRTY: &str = "\
# comment
1|2|-1
garbage line
3|4|zero
5|6|0
7|7|0
8|9|-1
";

    #[test]
    fn lenient_skips_and_counts_garbage_lines() {
        let (b, diag) =
            parse_serial1_with(DIRTY.as_bytes(), &ParseOptions::lenient()).unwrap();
        let g = b.build();
        assert_eq!(diag.dropped(), 3, "{:?}", diag.issues);
        assert_eq!(diag.records_ok, 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(diag.issues[0].location, RecordLocation::Line(3));
        assert_eq!(diag.issues[1].location, RecordLocation::Line(4));
        assert_eq!(diag.issues[2].location, RecordLocation::Line(6));
        assert!(diag.issues[2].message.contains("self-loop"), "{}", diag.issues[2]);
    }

    #[test]
    fn strict_fails_at_first_garbage_line() {
        let err = parse_serial1_with(DIRTY.as_bytes(), &ParseOptions::strict()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 3, .. }), "{err}");
        // The convenience wrappers stay strict.
        assert!(parse_serial1(DIRTY.as_bytes()).is_err());
    }

    #[test]
    fn lenient_error_budget_is_enforced() {
        let opts = ParseOptions::lenient().with_max_errors(2);
        let err = parse_serial1_with(DIRTY.as_bytes(), &opts).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("error budget exhausted"), "{msg}");
        assert!(msg.contains("max 2"), "{msg}");
        // A budget that covers the damage succeeds.
        let opts = ParseOptions::lenient().with_max_errors(3);
        let (b, diag) = parse_serial1_with(DIRTY.as_bytes(), &opts).unwrap();
        assert_eq!(diag.dropped(), 3);
        assert_eq!(b.build().edge_count(), 3);
    }

    #[test]
    fn lenient_on_clean_input_reports_clean() {
        let (b, diag) =
            parse_serial2_with(SERIAL2.as_bytes(), &ParseOptions::lenient()).unwrap();
        assert!(diag.is_clean());
        assert_eq!(diag.records_ok, 3);
        assert_eq!(b.build().edge_count(), 3);
    }
}
