//! Classic AS influence metrics: customer cone, transit degree, node degree.
//!
//! The paper (§6.6) contrasts its new *hierarchy-free reachability* metric
//! with **customer cone** — "the set of ASes that X can reach using only p2c
//! links" (AS-Rank / Luckie et al.) — and uses **transit degree** when
//! reasoning about which networks sit at the hierarchy's top. Both are
//! implemented here directly on [`AsGraph`].

use crate::graph::{AsGraph, NodeId};

/// The customer cone of `n`: every AS reachable from `n` by repeatedly
/// following provider-to-customer links, **including `n` itself** (AS-Rank's
/// convention). Returned sorted by node index.
pub fn customer_cone(g: &AsGraph, n: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; g.len()];
    let mut stack = vec![n];
    let mut cone = Vec::new();
    visited[n.idx()] = true;
    while let Some(u) = stack.pop() {
        cone.push(u);
        for &c in g.customers(u) {
            if !visited[c.idx()] {
                visited[c.idx()] = true;
                stack.push(c);
            }
        }
    }
    cone.sort_unstable();
    cone
}

/// Customer cone **sizes** for every AS in the graph, indexed by node index.
///
/// Each entry counts the cone including the AS itself, so stub networks have
/// size 1. Implemented as one bounded DFS per AS with an epoch-stamped
/// visited array; total cost is the sum of cone edge masses, which is small
/// for Internet-like hierarchies (most ASes are stubs).
pub fn customer_cone_sizes(g: &AsGraph) -> Vec<u32> {
    let n = g.len();
    let mut sizes = vec![0u32; n];
    let mut stamp = vec![0u32; n];
    let mut epoch = 0u32;
    let mut stack: Vec<NodeId> = Vec::new();
    for root in g.nodes() {
        epoch += 1;
        let mut count = 0u32;
        stack.clear();
        stack.push(root);
        stamp[root.idx()] = epoch;
        while let Some(u) = stack.pop() {
            count += 1;
            for &c in g.customers(u) {
                if stamp[c.idx()] != epoch {
                    stamp[c.idx()] = epoch;
                    stack.push(c);
                }
            }
        }
        sizes[root.idx()] = count;
    }
    sizes
}

/// AS-Rank-style **transit degree**: the number of unique neighbors that can
/// appear on either side of `n` in a valley-free transited path.
///
/// Traffic only transits `n` between a customer and some other neighbor, so
/// an AS with no customers has transit degree 0; an AS with at least one
/// customer and at least two neighbors can transit between any neighbor pair
/// that includes a customer, making every neighbor countable. (CAIDA defines
/// transit degree over observed BGP paths; this is the graph-theoretic
/// equivalent under the valley-free model, which is all a relationship-only
/// dataset can support.)
pub fn transit_degree(g: &AsGraph, n: NodeId) -> usize {
    let customers = g.customers(n).len();
    let total = g.degree(n);
    if customers == 0 || total < 2 {
        0
    } else {
        total
    }
}

/// Plain node degree (number of unique neighbors of any relationship class).
pub fn node_degree(g: &AsGraph, n: NodeId) -> usize {
    g.degree(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AsGraphBuilder, AsId, Relationship};

    /// 1 -> 2 -> {3, 4}; 3 peers 5; 5 is a stub customer of 4.
    fn chain() -> AsGraph {
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(1), AsId(2), Relationship::P2c);
        b.add_link(AsId(2), AsId(3), Relationship::P2c);
        b.add_link(AsId(2), AsId(4), Relationship::P2c);
        b.add_link(AsId(3), AsId(5), Relationship::P2p);
        b.add_link(AsId(4), AsId(5), Relationship::P2c);
        b.build()
    }

    fn asns(g: &AsGraph, nodes: &[NodeId]) -> Vec<u32> {
        nodes.iter().map(|&n| g.asn(n).0).collect()
    }

    #[test]
    fn cone_follows_only_p2c_down() {
        let g = chain();
        let n1 = g.index_of(AsId(1)).unwrap();
        let cone = customer_cone(&g, n1);
        // Peer link 3-5 must not be followed, but 5 enters via 4.
        assert_eq!(asns(&g, &cone), vec![1, 2, 3, 4, 5]);

        let n3 = g.index_of(AsId(3)).unwrap();
        assert_eq!(asns(&g, &customer_cone(&g, n3)), vec![3]);
    }

    #[test]
    fn cone_sizes_match_individual_cones() {
        let g = chain();
        let sizes = customer_cone_sizes(&g);
        for n in g.nodes() {
            assert_eq!(sizes[n.idx()] as usize, customer_cone(&g, n).len(), "node {n}");
        }
    }

    #[test]
    fn stub_cone_is_self_only() {
        let g = chain();
        let n5 = g.index_of(AsId(5)).unwrap();
        assert_eq!(customer_cone(&g, n5), vec![n5]);
    }

    #[test]
    fn cone_handles_diamonds_without_double_count() {
        // 1 -> 2, 1 -> 3, 2 -> 4, 3 -> 4: 4 reached twice, counted once.
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(1), AsId(2), Relationship::P2c);
        b.add_link(AsId(1), AsId(3), Relationship::P2c);
        b.add_link(AsId(2), AsId(4), Relationship::P2c);
        b.add_link(AsId(3), AsId(4), Relationship::P2c);
        let g = b.build();
        let n1 = g.index_of(AsId(1)).unwrap();
        assert_eq!(customer_cone(&g, n1).len(), 4);
    }

    #[test]
    fn transit_degree_zero_without_customers() {
        let g = chain();
        let n5 = g.index_of(AsId(5)).unwrap(); // only peer + provider
        assert_eq!(transit_degree(&g, n5), 0);
        let n2 = g.index_of(AsId(2)).unwrap(); // 1 provider, 2 customers
        assert_eq!(transit_degree(&g, n2), 3);
        let n1 = g.index_of(AsId(1)).unwrap(); // single neighbor: cannot transit
        assert_eq!(transit_degree(&g, n1), 0);
    }

    #[test]
    fn node_degree_counts_all_classes() {
        let g = chain();
        let n3 = g.index_of(AsId(3)).unwrap();
        assert_eq!(node_degree(&g, n3), 2); // provider 2 + peer 5
    }
}
