//! The immutable, index-compressed AS-level topology graph.
//!
//! [`AsGraph`] stores, for every AS, its neighbors split into the three sets
//! that valley-free routing cares about — *providers*, *customers*, and
//! *peers* — in CSR (compressed sparse row) layout. All adjacency lists are
//! sorted by node index so that every traversal over the graph is
//! deterministic.

use crate::error::GraphError;
use std::collections::BTreeMap;
use std::fmt;

/// An Autonomous System number.
///
/// The paper works with 16- and 32-bit ASNs from the CAIDA datasets; we store
/// the full 32-bit space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub struct AsId(pub u32);

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// A dense node index into an [`AsGraph`].
///
/// Node indices are assigned in ascending ASN order, so `NodeId(0)` is the
/// lowest-numbered AS in the graph. Indices are only meaningful relative to
/// the graph that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as a `usize`, for slice indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The business relationship annotating an inter-AS link.
///
/// Orientation matters for [`Relationship::P2c`]: in `add_link(a, b, P2c)`,
/// `a` is the **provider** and `b` the **customer** (CAIDA's `-1`
/// annotation). [`Relationship::P2p`] is symmetric (CAIDA's `0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Relationship {
    /// Provider-to-customer: the left AS sells transit to the right AS.
    P2c,
    /// Settlement-free peering.
    P2p,
}

impl Relationship {
    /// Human-readable name matching CAIDA's documentation.
    pub fn name(self) -> &'static str {
        match self {
            Relationship::P2c => "p2c",
            Relationship::P2p => "p2p",
        }
    }
}

/// How one AS sees a specific neighbor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NeighborKind {
    /// The neighbor sells us transit.
    Provider,
    /// We sell the neighbor transit.
    Customer,
    /// Settlement-free peer.
    Peer,
}

impl NeighborKind {
    /// Name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            NeighborKind::Provider => "provider",
            NeighborKind::Customer => "customer",
            NeighborKind::Peer => "peer",
        }
    }
}

/// Internal canonical edge record: `(low_asn, high_asn)` key with the
/// relationship expressed relative to that orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CanonRel {
    /// The lower-numbered AS is the provider.
    LowProvidesHigh,
    /// The higher-numbered AS is the provider.
    HighProvidesLow,
    /// Peering.
    Peer,
}

impl CanonRel {
    fn name(self) -> &'static str {
        match self {
            CanonRel::Peer => "p2p",
            _ => "p2c",
        }
    }

    /// Orientation-aware name, so conflicting `p2c` directions read
    /// differently in reports.
    fn describe(self) -> &'static str {
        match self {
            CanonRel::Peer => "p2p",
            CanonRel::LowProvidesHigh => "p2c (lower AS provides)",
            CanonRel::HighProvidesLow => "p2c (higher AS provides)",
        }
    }
}

/// A conflicting re-declaration of a link's relationship, recorded (not
/// applied) by [`AsGraphBuilder::add_link`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelConflict {
    /// Lower-numbered AS of the pair.
    pub a: AsId,
    /// Higher-numbered AS of the pair.
    pub b: AsId,
    /// The relationship kept (first declaration).
    pub kept: &'static str,
    /// The relationship dropped (later declaration).
    pub dropped: &'static str,
}

impl fmt::Display for RelConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}: kept {}, dropped {}", self.a, self.b, self.kept, self.dropped)
    }
}

/// Incremental builder for [`AsGraph`].
///
/// Links may be added in any order; duplicates are ignored and conflicting
/// re-declarations of the same pair keep the *first* relationship seen (the
/// paper's augmentation rule: "we do not modify the previously identified
/// link type"). Conflicts are recorded and available from
/// [`AsGraphBuilder::conflicts`] so topology health checks can surface
/// them. Use [`AsGraphBuilder::add_link_strict`] to treat conflicts as
/// errors instead.
#[derive(Debug, Default, Clone)]
pub struct AsGraphBuilder {
    links: BTreeMap<(u32, u32), CanonRel>,
    /// ASes declared with no links (isolated nodes still count as ASes).
    isolated: Vec<u32>,
    /// Conflicting re-declarations seen by `add_link` (first one kept).
    conflicts: Vec<RelConflict>,
}

impl AsGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct links added so far.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Declares that an AS exists even if no link mentions it.
    pub fn add_isolated(&mut self, asn: AsId) {
        self.isolated.push(asn.0);
    }

    fn canon(a: u32, b: u32, rel: Relationship) -> ((u32, u32), CanonRel) {
        let key = (a.min(b), a.max(b));
        let canon = match rel {
            Relationship::P2p => CanonRel::Peer,
            Relationship::P2c if a < b => CanonRel::LowProvidesHigh,
            Relationship::P2c => CanonRel::HighProvidesLow,
        };
        (key, canon)
    }

    /// Adds a link, first declaration winning on conflict.
    ///
    /// For [`Relationship::P2c`], `a` is the provider of `b`. Returns `true`
    /// if the link was newly inserted, `false` if the pair was already known
    /// (in which case the existing relationship is preserved). Self-loops are
    /// silently ignored and return `false`.
    pub fn add_link(&mut self, a: AsId, b: AsId, rel: Relationship) -> bool {
        if a == b {
            return false;
        }
        let (key, canon) = Self::canon(a.0, b.0, rel);
        match self.links.entry(key) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(canon);
                true
            }
            std::collections::btree_map::Entry::Occupied(o) => {
                let existing = *o.get();
                if existing != canon {
                    self.conflicts.push(RelConflict {
                        a: AsId(key.0),
                        b: AsId(key.1),
                        kept: existing.describe(),
                        dropped: canon.describe(),
                    });
                }
                false
            }
        }
    }

    /// Conflicting re-declarations recorded by [`AsGraphBuilder::add_link`]
    /// (the first declaration won each time).
    pub fn conflicts(&self) -> &[RelConflict] {
        &self.conflicts
    }

    /// Adds a link, erroring on self-loops and conflicting re-declarations.
    pub fn add_link_strict(&mut self, a: AsId, b: AsId, rel: Relationship) -> Result<(), GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop { asn: a.0 });
        }
        let (key, canon) = Self::canon(a.0, b.0, rel);
        match self.links.entry(key) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(canon);
                Ok(())
            }
            std::collections::btree_map::Entry::Occupied(o) => {
                let existing = *o.get();
                if existing == canon {
                    Ok(())
                } else {
                    Err(GraphError::ConflictingRelationship {
                        a: key.0,
                        b: key.1,
                        first: existing.name(),
                        second: canon.name(),
                    })
                }
            }
        }
    }

    /// Returns whether a link between the two ASes has been declared.
    pub fn contains_link(&self, a: AsId, b: AsId) -> bool {
        self.links.contains_key(&(a.0.min(b.0), a.0.max(b.0)))
    }

    /// Finalizes the builder into an immutable [`AsGraph`].
    pub fn build(&self) -> AsGraph {
        // Collect the node universe: every AS mentioned by a link plus
        // explicitly declared isolated ASes, in ascending ASN order.
        let mut asns: Vec<u32> = self
            .links
            .keys()
            .flat_map(|&(a, b)| [a, b])
            .chain(self.isolated.iter().copied())
            .collect();
        asns.sort_unstable();
        asns.dedup();

        let n = asns.len();
        let index_of = |asn: u32| -> u32 {
            asns.binary_search(&asn).expect("asn collected above") as u32
        };

        // Count per-node degrees per class, then fill CSR arrays.
        let mut prov_cnt = vec![0u32; n];
        let mut cust_cnt = vec![0u32; n];
        let mut peer_cnt = vec![0u32; n];
        for (&(lo, hi), &rel) in &self.links {
            let li = index_of(lo) as usize;
            let hi_i = index_of(hi) as usize;
            match rel {
                CanonRel::Peer => {
                    peer_cnt[li] += 1;
                    peer_cnt[hi_i] += 1;
                }
                CanonRel::LowProvidesHigh => {
                    cust_cnt[li] += 1;
                    prov_cnt[hi_i] += 1;
                }
                CanonRel::HighProvidesLow => {
                    prov_cnt[li] += 1;
                    cust_cnt[hi_i] += 1;
                }
            }
        }

        fn offsets(counts: &[u32]) -> Vec<u32> {
            let mut off = Vec::with_capacity(counts.len() + 1);
            let mut acc = 0u32;
            off.push(0);
            for &c in counts {
                acc += c;
                off.push(acc);
            }
            off
        }
        let prov_off = offsets(&prov_cnt);
        let cust_off = offsets(&cust_cnt);
        let peer_off = offsets(&peer_cnt);

        let mut providers = vec![NodeId(0); *prov_off.last().unwrap() as usize];
        let mut customers = vec![NodeId(0); *cust_off.last().unwrap() as usize];
        let mut peers = vec![NodeId(0); *peer_off.last().unwrap() as usize];
        let mut prov_fill = prov_off.clone();
        let mut cust_fill = cust_off.clone();
        let mut peer_fill = peer_off.clone();

        let mut edges = Vec::with_capacity(self.links.len());
        for (&(lo, hi), &rel) in &self.links {
            let li = index_of(lo);
            let hi_i = index_of(hi);
            let (provider, customer) = match rel {
                CanonRel::Peer => {
                    peers[peer_fill[li as usize] as usize] = NodeId(hi_i);
                    peer_fill[li as usize] += 1;
                    peers[peer_fill[hi_i as usize] as usize] = NodeId(li);
                    peer_fill[hi_i as usize] += 1;
                    edges.push((NodeId(li), NodeId(hi_i), Relationship::P2p));
                    continue;
                }
                CanonRel::LowProvidesHigh => (li, hi_i),
                CanonRel::HighProvidesLow => (hi_i, li),
            };
            customers[cust_fill[provider as usize] as usize] = NodeId(customer);
            cust_fill[provider as usize] += 1;
            providers[prov_fill[customer as usize] as usize] = NodeId(provider);
            prov_fill[customer as usize] += 1;
            edges.push((NodeId(provider), NodeId(customer), Relationship::P2c));
        }

        // Adjacency lists must be sorted for deterministic iteration.
        let sort_ranges = |adj: &mut [NodeId], off: &[u32]| {
            for w in off.windows(2) {
                adj[w[0] as usize..w[1] as usize].sort_unstable();
            }
        };
        sort_ranges(&mut providers, &prov_off);
        sort_ranges(&mut customers, &cust_off);
        sort_ranges(&mut peers, &peer_off);

        AsGraph {
            asns,
            prov_off,
            cust_off,
            peer_off,
            providers,
            customers,
            peers,
            edges,
        }
    }
}

/// An immutable AS-level topology with relationship-classed adjacency.
///
/// See the [crate docs](crate) for an overview and an example.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct AsGraph {
    /// Sorted ASNs; position is the node index.
    asns: Vec<u32>,
    prov_off: Vec<u32>,
    cust_off: Vec<u32>,
    peer_off: Vec<u32>,
    providers: Vec<NodeId>,
    customers: Vec<NodeId>,
    peers: Vec<NodeId>,
    /// Canonical edge list (provider-first for `P2c`), sorted by canonical
    /// `(min_asn, max_asn)` pair.
    edges: Vec<(NodeId, NodeId, Relationship)>,
}

impl AsGraph {
    /// An empty graph.
    pub fn empty() -> Self {
        AsGraphBuilder::new().build()
    }

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.asns.len()
    }

    /// Whether the graph has no ASes.
    pub fn is_empty(&self) -> bool {
        self.asns.is_empty()
    }

    /// Number of inter-AS links.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The ASN of a node.
    #[inline]
    pub fn asn(&self, n: NodeId) -> AsId {
        AsId(self.asns[n.idx()])
    }

    /// Looks up the node index of an ASN, if present.
    #[inline]
    pub fn index_of(&self, asn: AsId) -> Option<NodeId> {
        self.asns.binary_search(&asn.0).ok().map(|i| NodeId(i as u32))
    }

    /// Iterates all node indices in ascending order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.asns.len() as u32).map(NodeId)
    }

    /// Iterates all ASNs in ascending order.
    pub fn asns(&self) -> impl Iterator<Item = AsId> + '_ {
        self.asns.iter().map(|&a| AsId(a))
    }

    /// The providers of `n` (ASes `n` buys transit from), sorted.
    #[inline]
    pub fn providers(&self, n: NodeId) -> &[NodeId] {
        &self.providers[self.prov_off[n.idx()] as usize..self.prov_off[n.idx() + 1] as usize]
    }

    /// The customers of `n` (ASes buying transit from `n`), sorted.
    #[inline]
    pub fn customers(&self, n: NodeId) -> &[NodeId] {
        &self.customers[self.cust_off[n.idx()] as usize..self.cust_off[n.idx() + 1] as usize]
    }

    /// The settlement-free peers of `n`, sorted.
    #[inline]
    pub fn peers(&self, n: NodeId) -> &[NodeId] {
        &self.peers[self.peer_off[n.idx()] as usize..self.peer_off[n.idx() + 1] as usize]
    }

    /// All neighbors of `n` with how `n` sees each of them.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = (NodeId, NeighborKind)> + '_ {
        self.providers(n)
            .iter()
            .map(|&p| (p, NeighborKind::Provider))
            .chain(self.customers(n).iter().map(|&c| (c, NeighborKind::Customer)))
            .chain(self.peers(n).iter().map(|&p| (p, NeighborKind::Peer)))
    }

    /// Total neighbor count (node degree).
    pub fn degree(&self, n: NodeId) -> usize {
        self.providers(n).len() + self.customers(n).len() + self.peers(n).len()
    }

    /// How `a` sees `b`, if they are neighbors.
    pub fn kind_between(&self, a: NodeId, b: NodeId) -> Option<NeighborKind> {
        if self.providers(a).binary_search(&b).is_ok() {
            Some(NeighborKind::Provider)
        } else if self.customers(a).binary_search(&b).is_ok() {
            Some(NeighborKind::Customer)
        } else if self.peers(a).binary_search(&b).is_ok() {
            Some(NeighborKind::Peer)
        } else {
            None
        }
    }

    /// The canonical edge list: `(provider, customer, P2c)` or
    /// `(a, b, P2p)`, in deterministic order.
    pub fn edges(&self) -> &[(NodeId, NodeId, Relationship)] {
        &self.edges
    }

    /// Re-opens the graph as a builder (used by topology augmentation).
    pub fn to_builder(&self) -> AsGraphBuilder {
        let mut b = AsGraphBuilder::new();
        for &(x, y, rel) in &self.edges {
            b.add_link(self.asn(x), self.asn(y), rel);
        }
        // Preserve isolated nodes.
        for n in self.nodes() {
            if self.degree(n) == 0 {
                b.add_isolated(self.asn(n));
            }
        }
        b
    }

    /// ASes that buy transit from nobody (no providers). The Tier-1 clique is
    /// a subset of these.
    pub fn transit_free(&self) -> Vec<NodeId> {
        self.nodes().filter(|&n| self.providers(n).is_empty()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> AsGraph {
        // 1 and 2 are providers of 3 and 4; 3 peers with 4.
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(1), AsId(3), Relationship::P2c);
        b.add_link(AsId(1), AsId(4), Relationship::P2c);
        b.add_link(AsId(2), AsId(3), Relationship::P2c);
        b.add_link(AsId(2), AsId(4), Relationship::P2c);
        b.add_link(AsId(3), AsId(4), Relationship::P2p);
        b.add_link(AsId(1), AsId(2), Relationship::P2p);
        b.build()
    }

    #[test]
    fn builds_expected_adjacency() {
        let g = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 6);
        let n3 = g.index_of(AsId(3)).unwrap();
        let n4 = g.index_of(AsId(4)).unwrap();
        let n1 = g.index_of(AsId(1)).unwrap();
        assert_eq!(g.providers(n3).len(), 2);
        assert_eq!(g.peers(n3), &[n4]);
        assert_eq!(g.customers(n1), &[n3, n4]);
        assert_eq!(g.kind_between(n3, n1), Some(NeighborKind::Provider));
        assert_eq!(g.kind_between(n1, n3), Some(NeighborKind::Customer));
        assert_eq!(g.kind_between(n3, n4), Some(NeighborKind::Peer));
        assert_eq!(g.kind_between(n3, n3), None);
    }

    #[test]
    fn node_indices_follow_asn_order() {
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(900), AsId(20), Relationship::P2c);
        b.add_link(AsId(900), AsId(500), Relationship::P2p);
        let g = b.build();
        let asns: Vec<u32> = g.asns().map(|a| a.0).collect();
        assert_eq!(asns, vec![20, 500, 900]);
        assert_eq!(g.asn(NodeId(0)), AsId(20));
    }

    #[test]
    fn duplicate_links_are_ignored_first_wins() {
        let mut b = AsGraphBuilder::new();
        assert!(b.add_link(AsId(1), AsId(2), Relationship::P2c));
        assert!(!b.add_link(AsId(1), AsId(2), Relationship::P2c));
        // Conflicting re-declaration keeps the first.
        assert!(!b.add_link(AsId(2), AsId(1), Relationship::P2p));
        let g = b.build();
        let n1 = g.index_of(AsId(1)).unwrap();
        let n2 = g.index_of(AsId(2)).unwrap();
        assert_eq!(g.kind_between(n1, n2), Some(NeighborKind::Customer));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn strict_add_detects_conflicts() {
        let mut b = AsGraphBuilder::new();
        b.add_link_strict(AsId(1), AsId(2), Relationship::P2c).unwrap();
        // Same declaration again is fine.
        b.add_link_strict(AsId(1), AsId(2), Relationship::P2c).unwrap();
        let err = b.add_link_strict(AsId(1), AsId(2), Relationship::P2p).unwrap_err();
        assert!(matches!(err, GraphError::ConflictingRelationship { .. }));
        // Reversed p2c orientation is a conflict too.
        let err = b.add_link_strict(AsId(2), AsId(1), Relationship::P2c).unwrap_err();
        assert!(matches!(err, GraphError::ConflictingRelationship { .. }));
        let err = b.add_link_strict(AsId(3), AsId(3), Relationship::P2p).unwrap_err();
        assert!(matches!(err, GraphError::SelfLoop { asn: 3 }));
    }

    #[test]
    fn self_loops_silently_dropped_by_lenient_add() {
        let mut b = AsGraphBuilder::new();
        assert!(!b.add_link(AsId(7), AsId(7), Relationship::P2p));
        assert_eq!(b.link_count(), 0);
    }

    #[test]
    fn isolated_nodes_survive_build_and_roundtrip() {
        let mut b = AsGraphBuilder::new();
        b.add_isolated(AsId(42));
        b.add_link(AsId(1), AsId(2), Relationship::P2p);
        let g = b.build();
        assert_eq!(g.len(), 3);
        let n42 = g.index_of(AsId(42)).unwrap();
        assert_eq!(g.degree(n42), 0);
        let g2 = g.to_builder().build();
        assert_eq!(g2.len(), 3);
        assert_eq!(g2.edge_count(), 1);
    }

    #[test]
    fn transit_free_finds_provider_less_ases() {
        let g = diamond();
        let tf: Vec<u32> = g.transit_free().into_iter().map(|n| g.asn(n).0).collect();
        assert_eq!(tf, vec![1, 2]);
    }

    #[test]
    fn roundtrip_through_builder_preserves_graph() {
        let g = diamond();
        let g2 = g.to_builder().build();
        assert_eq!(g.len(), g2.len());
        assert_eq!(g.edges(), g2.edges());
    }

    #[test]
    fn neighbors_iterator_covers_all_classes() {
        let g = diamond();
        let n3 = g.index_of(AsId(3)).unwrap();
        let mut kinds: Vec<(u32, &str)> = g
            .neighbors(n3)
            .map(|(n, k)| (g.asn(n).0, k.name()))
            .collect();
        kinds.sort();
        assert_eq!(kinds, vec![(1, "provider"), (2, "provider"), (4, "peer")]);
        assert_eq!(g.degree(n3), 3);
    }
}
