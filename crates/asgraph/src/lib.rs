#![warn(missing_docs)]

//! # flatnet-asgraph — AS-level Internet topology substrate
//!
//! This crate models the Internet's Autonomous-System-level topology the way
//! "Cloud Provider Connectivity in the Flat Internet" (IMC 2020) does:
//!
//! * ASes are identified by their AS number ([`AsId`]) and connected by
//!   *relationship-annotated* links: customer-to-provider ([`Relationship::P2c`],
//!   read "left provides transit to right") or settlement-free peering
//!   ([`Relationship::P2p`]).
//! * Topologies are usually loaded from CAIDA AS-relationship files
//!   ([`caida`] parses both the `serial-1` and `serial-2` formats used for the
//!   paper's September 2015 and September 2020 snapshots) and then *augmented*
//!   with peer links discovered by traceroutes from inside cloud networks
//!   ([`augment`]).
//! * Classic AS metrics are provided: customer cone, transit degree, node
//!   degree ([`cone`]), plus Tier-1 clique inference and tier assignment
//!   ([`tiers`]), and CAIDA-style AS type classification ([`astype`]).
//!
//! The central type is [`AsGraph`]: an immutable, index-compressed adjacency
//! structure with neighbors split by relationship class, which is exactly the
//! access pattern valley-free route propagation needs. Build one with
//! [`AsGraphBuilder`], from a CAIDA file via [`caida::parse_serial2`] /
//! [`caida::parse_serial1`], or synthetically with the `flatnet-netgen` crate.
//!
//! ```
//! use flatnet_asgraph::{AsGraphBuilder, AsId, Relationship};
//!
//! let mut b = AsGraphBuilder::new();
//! // AS 100 provides transit to AS 200; AS 200 peers with AS 300.
//! b.add_link(AsId(100), AsId(200), Relationship::P2c);
//! b.add_link(AsId(200), AsId(300), Relationship::P2p);
//! let g = b.build();
//! assert_eq!(g.len(), 3);
//! let n200 = g.index_of(AsId(200)).unwrap();
//! assert_eq!(g.providers(n200).len(), 1);
//! assert_eq!(g.peers(n200).len(), 1);
//! ```

pub mod astype;
pub mod augment;
pub mod caida;
pub mod cone;
pub mod dot;
pub mod error;
pub mod graph;
pub mod ingest;
pub mod problink;
pub mod relinfer;
pub mod tiers;
pub mod validate;

pub use astype::AsType;
pub use augment::{augment_many, augment_with_peers, AugmentReport};
pub use error::GraphError;
pub use graph::{AsGraph, AsGraphBuilder, AsId, NodeId, Relationship};
pub use ingest::{ParseDiagnostics, ParseIssue, ParseOptions, RecordLocation};
pub use problink::{refine_relationships, RefinedRelationships};
pub use relinfer::{infer_relationships, score_inference, InferredRelationships, RelAccuracy};
pub use tiers::{infer_clique, TierAssignment, Tiers};
pub use validate::{validate_topology, HealthCheck, HealthReport, Severity, ValidateOptions};
