//! AS-relationship inference from observed BGP paths (Gao's algorithm).
//!
//! The CAIDA as-rel datasets the paper builds on (§2.3, §4.1) are produced
//! by inference algorithms (Gao 2001 → AS-Rank → ProbLink) run over route
//! collector RIBs. This module implements the classic degree-based Gao
//! algorithm over AS paths:
//!
//! 1. every path is assumed **valley-free**, so it climbs customer→provider
//!    links to a *top provider* and then descends provider→customer;
//! 2. the top provider of a path is its highest-degree AS (degree measured
//!    over the observed paths themselves);
//! 3. each path votes its uphill edges as c2p and its downhill edges as
//!    p2c — **excluding the one or two edges adjacent to the top**, where a
//!    settlement-free peering may legally sit (Gao's refined algorithm);
//! 4. edges left without any transit vote are classified p2p when their
//!    endpoints' degrees are within `peer_degree_ratio` (Gao's `R`),
//!    else c2p with the smaller-degree side as the customer.
//!
//! Run against RIBs simulated from a known ground truth
//! (`flatnet_bgpsim::collectors` — via the `flatnet-core` experiment),
//! this reproduces the paper's premise quantitatively: **c2p links infer
//! accurately, edge p2p links barely appear in feeds at all** — which is
//! why the paper augments with traceroutes from inside the clouds.

use crate::graph::{AsGraph, AsGraphBuilder, AsId, Relationship};
use std::collections::{BTreeMap, BTreeSet};

/// Votes accumulated for one canonically ordered AS pair `(lo, hi)`.
#[derive(Debug, Default, Clone, Copy)]
struct EdgeVotes {
    /// Transit votes with `lo` on the customer side.
    lo_customer: u32,
    /// Transit votes with `hi` on the customer side.
    hi_customer: u32,
}

/// The inferred topology plus bookkeeping for evaluation.
#[derive(Debug, Clone)]
pub struct InferredRelationships {
    /// The inferred relationship graph.
    pub graph: AsGraph,
    /// Number of distinct links observed in the paths.
    pub observed_links: usize,
    /// Links classified p2p.
    pub inferred_p2p: usize,
    /// Links classified p2c.
    pub inferred_p2c: usize,
}

/// Runs Gao-style inference over AS paths (each `[monitor, ..., origin]`,
/// loop-free). `peer_degree_ratio` is Gao's `R` (the paper's lineage used
/// R = 60): an edge can only be p2p if its endpoints' degrees are within
/// this factor.
pub fn infer_relationships(paths: &[Vec<AsId>], peer_degree_ratio: f64) -> InferredRelationships {
    // Degrees over the observed adjacency set.
    let mut neighbors: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    for p in paths {
        for w in p.windows(2) {
            if w[0] == w[1] {
                continue;
            }
            neighbors.entry(w[0].0).or_default().insert(w[1].0);
            neighbors.entry(w[1].0).or_default().insert(w[0].0);
        }
    }
    let degree = |a: AsId| neighbors.get(&a.0).map(|s| s.len()).unwrap_or(0);

    // Vote per edge.
    let mut votes: BTreeMap<(u32, u32), EdgeVotes> = BTreeMap::new();
    for p in paths {
        if p.len() < 2 {
            continue;
        }
        // Top provider: highest degree, leftmost on ties (Gao).
        let top = (0..p.len())
            .max_by_key(|&i| (degree(p[i]), std::cmp::Reverse(i)))
            .unwrap();
        for k in 0..p.len() - 1 {
            let (a, b) = (p[k], p[k + 1]);
            if a == b {
                continue;
            }
            let key = (a.0.min(b.0), a.0.max(b.0));
            let v = votes.entry(key).or_default();
            // The ≤2 edges touching the top provider carry no transit
            // evidence — one of them may be the path's single peer link.
            if k + 1 == top || k == top {
                continue;
            }
            // Uphill strictly below the top, downhill strictly after: the
            // customer side is `a` when climbing, `b` when descending.
            let customer = if k < top { a } else { b };
            if customer.0 == key.0 {
                v.lo_customer += 1;
            } else {
                v.hi_customer += 1;
            }
        }
    }

    // Classify.
    let mut b = AsGraphBuilder::new();
    let mut inferred_p2p = 0usize;
    let mut inferred_p2c = 0usize;
    for (&(lo, hi), v) in &votes {
        let (dlo, dhi) = (degree(AsId(lo)) as f64, degree(AsId(hi)) as f64);
        let comparable = dlo.max(dhi) / dlo.min(dhi).max(1.0) <= peer_degree_ratio;
        if v.lo_customer == 0 && v.hi_customer == 0 {
            // Never transited through: the edge only ever appeared
            // adjacent to path tops. Comparable degrees ⇒ p2p; otherwise
            // the small side buys transit from the big side.
            if comparable {
                b.add_link(AsId(lo), AsId(hi), Relationship::P2p);
                inferred_p2p += 1;
            } else if dlo < dhi {
                b.add_link(AsId(hi), AsId(lo), Relationship::P2c);
                inferred_p2c += 1;
            } else {
                b.add_link(AsId(lo), AsId(hi), Relationship::P2c);
                inferred_p2c += 1;
            }
        } else if v.lo_customer >= v.hi_customer {
            // `lo` is the customer: provider is `hi`.
            b.add_link(AsId(hi), AsId(lo), Relationship::P2c);
            inferred_p2c += 1;
        } else {
            b.add_link(AsId(lo), AsId(hi), Relationship::P2c);
            inferred_p2c += 1;
        }
    }
    InferredRelationships {
        graph: b.build(),
        observed_links: votes.len(),
        inferred_p2p,
        inferred_p2c,
    }
}

/// Accuracy of an inferred graph against ground truth, over the links the
/// inference observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RelAccuracy {
    /// Observed links that are c2p in truth and inferred c2p with the
    /// correct orientation.
    pub c2p_correct: usize,
    /// Observed truth-c2p links inferred with the wrong orientation.
    pub c2p_flipped: usize,
    /// Observed truth-c2p links inferred as p2p.
    pub c2p_as_p2p: usize,
    /// Observed truth-p2p links inferred as p2p.
    pub p2p_correct: usize,
    /// Observed truth-p2p links inferred as c2p (either orientation).
    pub p2p_as_c2p: usize,
    /// Truth-p2p links that never appeared in any path (the invisibility
    /// the paper's traceroute campaign exists to fix).
    pub p2p_invisible: usize,
    /// Truth-c2p links that never appeared in any path.
    pub c2p_invisible: usize,
}

impl RelAccuracy {
    /// Fraction of *observed* truth-c2p links inferred correctly.
    pub fn c2p_accuracy(&self) -> f64 {
        let total = self.c2p_correct + self.c2p_flipped + self.c2p_as_p2p;
        if total == 0 {
            0.0
        } else {
            self.c2p_correct as f64 / total as f64
        }
    }

    /// Fraction of **all** truth-p2p links that were both observed and
    /// correctly classified — the feed's real peer coverage.
    pub fn p2p_recall(&self) -> f64 {
        let total = self.p2p_correct + self.p2p_as_c2p + self.p2p_invisible;
        if total == 0 {
            0.0
        } else {
            self.p2p_correct as f64 / total as f64
        }
    }

    /// Fraction of truth-p2p links that never showed up in the feed.
    pub fn p2p_invisible_fraction(&self) -> f64 {
        let total = self.p2p_correct + self.p2p_as_c2p + self.p2p_invisible;
        if total == 0 {
            0.0
        } else {
            self.p2p_invisible as f64 / total as f64
        }
    }
}

/// Scores `inferred` against `truth`. Links in `inferred` that don't exist
/// in `truth` are ignored (the simulator never fabricates adjacencies, so
/// they cannot occur in our pipelines).
pub fn score_inference(inferred: &AsGraph, truth: &AsGraph) -> RelAccuracy {
    use crate::graph::NeighborKind;
    let mut acc = RelAccuracy::default();
    for &(x, y, rel) in truth.edges() {
        let a = truth.asn(x); // provider for P2c
        let b = truth.asn(y);
        let inferred_kind = match (inferred.index_of(a), inferred.index_of(b)) {
            (Some(ia), Some(ib)) => inferred.kind_between(ia, ib),
            _ => None,
        };
        match rel {
            Relationship::P2c => match inferred_kind {
                None => acc.c2p_invisible += 1,
                // From a's perspective b should be a Customer.
                Some(NeighborKind::Customer) => acc.c2p_correct += 1,
                Some(NeighborKind::Provider) => acc.c2p_flipped += 1,
                Some(NeighborKind::Peer) => acc.c2p_as_p2p += 1,
            },
            Relationship::P2p => match inferred_kind {
                None => acc.p2p_invisible += 1,
                Some(NeighborKind::Peer) => acc.p2p_correct += 1,
                Some(_) => acc.p2p_as_c2p += 1,
            },
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(path: &[u32]) -> Vec<AsId> {
        path.iter().map(|&a| AsId(a)).collect()
    }

    #[test]
    fn infers_simple_hierarchy() {
        // Two tops 1 and 2 peering; customers 10 (of 1) and 20 (of 2);
        // stubs 100 (of 10), 200 (of 20). Monitors at the stubs see
        // valley-free paths over the top.
        // Extra customers (3,4 under 1; 5,6 under 2) give the tops the
        // degree dominance the heuristic keys on.
        let paths = vec![
            p(&[100, 10, 1, 2, 20, 200]),
            p(&[200, 20, 2, 1, 10, 100]),
            p(&[100, 10, 1, 2, 20]),
            p(&[200, 20, 2, 1, 10]),
            p(&[100, 10, 1, 3]),
            p(&[100, 10, 1, 4]),
            p(&[200, 20, 2, 5]),
            p(&[200, 20, 2, 6]),
        ];
        let inf = infer_relationships(&paths, 3.0);
        let g = &inf.graph;
        let n = |a: u32| g.index_of(AsId(a)).unwrap();
        use crate::graph::NeighborKind;
        assert_eq!(g.kind_between(n(10), n(1)), Some(NeighborKind::Provider));
        assert_eq!(g.kind_between(n(100), n(10)), Some(NeighborKind::Provider));
        assert_eq!(g.kind_between(n(20), n(2)), Some(NeighborKind::Provider));
        // The 1-2 edge sits at the top of every path crossing it, with
        // conflicting climb directions: p2p.
        assert_eq!(g.kind_between(n(1), n(2)), Some(NeighborKind::Peer));
        // 1's and 2's extra customers classify as c2p.
        assert_eq!(g.kind_between(n(3), n(1)), Some(NeighborKind::Provider));
        assert_eq!(g.kind_between(n(5), n(2)), Some(NeighborKind::Provider));
        assert_eq!(inf.observed_links, 9);
        assert_eq!(inf.inferred_p2p, 1);
        assert_eq!(inf.inferred_p2c, 8);
    }

    #[test]
    fn degree_gap_blocks_false_peering() {
        // A stub single-homed behind a huge provider: even though the edge
        // is top-adjacent from the stub's own monitor, the degree gap keeps
        // it c2p... with ratio 1.0 it *could* flip, so use Gao's R.
        let mut paths = vec![p(&[100, 1])];
        // Give 1 many neighbors to create the degree gap.
        for x in 2..40 {
            paths.push(p(&[100, 1, x]));
        }
        let inf = infer_relationships(&paths, 3.0);
        let g = &inf.graph;
        let n = |a: u32| g.index_of(AsId(a)).unwrap();
        use crate::graph::NeighborKind;
        assert_eq!(g.kind_between(n(100), n(1)), Some(NeighborKind::Provider));
    }

    #[test]
    fn scoring_counts_all_cases() {
        let mut truth = AsGraphBuilder::new();
        truth.add_link(AsId(1), AsId(2), Relationship::P2c);
        truth.add_link(AsId(1), AsId(3), Relationship::P2c);
        truth.add_link(AsId(2), AsId(3), Relationship::P2p);
        truth.add_link(AsId(4), AsId(5), Relationship::P2p); // invisible
        let truth = truth.build();

        let mut inf = AsGraphBuilder::new();
        inf.add_link(AsId(1), AsId(2), Relationship::P2c); // correct
        inf.add_link(AsId(3), AsId(1), Relationship::P2c); // flipped
        inf.add_link(AsId(2), AsId(3), Relationship::P2c); // p2p as c2p
        let inf = inf.build();

        let acc = score_inference(&inf, &truth);
        assert_eq!(acc.c2p_correct, 1);
        assert_eq!(acc.c2p_flipped, 1);
        assert_eq!(acc.p2p_as_c2p, 1);
        assert_eq!(acc.p2p_invisible, 1);
        assert_eq!(acc.c2p_invisible, 0);
        assert!((acc.c2p_accuracy() - 0.5).abs() < 1e-12);
        assert_eq!(acc.p2p_recall(), 0.0);
        assert!((acc.p2p_invisible_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_and_degenerate_paths() {
        let inf = infer_relationships(&[], 60.0);
        assert_eq!(inf.observed_links, 0);
        let inf = infer_relationships(&[p(&[7]), p(&[])], 60.0);
        assert_eq!(inf.observed_links, 0);
        let acc = RelAccuracy::default();
        assert_eq!(acc.c2p_accuracy(), 0.0);
        assert_eq!(acc.p2p_recall(), 0.0);
    }
}
