//! AS type classification (content / transit / access / enterprise).
//!
//! §4.3 of the paper: "CAIDA classifies AS into three types: content,
//! transit/access, or enterprise. If CAIDA identifies an AS as
//! transit/access and the AS has users in the APNIC dataset, we classify it
//! as access." This module models both the raw CAIDA classes and the
//! paper's user-refined four-way split used in Figures 3 and 4.

use crate::error::GraphError;
use crate::graph::AsId;
use std::collections::BTreeMap;
use std::io::BufRead;

/// The raw three-way class from CAIDA's `as2types` dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CaidaClass {
    /// Hosts/serves content.
    Content,
    /// Sells transit and/or serves end users.
    TransitAccess,
    /// Self-contained organization network.
    Enterprise,
}

/// The paper's refined four-way AS type (§4.3, Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub enum AsType {
    /// Content/hosting network.
    Content,
    /// Transit provider without measurable end users.
    Transit,
    /// Eyeball network: transit/access class *with* APNIC-visible users.
    Access,
    /// Enterprise network.
    Enterprise,
}

impl AsType {
    /// Report label.
    pub fn name(self) -> &'static str {
        match self {
            AsType::Content => "content",
            AsType::Transit => "transit",
            AsType::Access => "access",
            AsType::Enterprise => "enterprise",
        }
    }

    /// All four types in the order the paper's Fig. 4 stacks them.
    pub const ALL: [AsType; 4] = [AsType::Content, AsType::Transit, AsType::Access, AsType::Enterprise];
}

/// Applies the paper's refinement rule to one AS.
///
/// `users` is the APNIC-style estimated user count for the AS (0 when the AS
/// does not appear in the population dataset).
pub fn refine(class: CaidaClass, users: u64) -> AsType {
    match class {
        CaidaClass::Content => AsType::Content,
        CaidaClass::Enterprise => AsType::Enterprise,
        CaidaClass::TransitAccess => {
            if users > 0 {
                AsType::Access
            } else {
                AsType::Transit
            }
        }
    }
}

/// A per-AS type database, typically parsed from a CAIDA `as2types` file and
/// refined with user populations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AsTypeDb {
    classes: BTreeMap<u32, CaidaClass>,
}

impl AsTypeDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of classified ASes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Sets (or overwrites) the class for an AS.
    pub fn insert(&mut self, asn: AsId, class: CaidaClass) {
        self.classes.insert(asn.0, class);
    }

    /// Raw CAIDA class of an AS.
    pub fn class(&self, asn: AsId) -> Option<CaidaClass> {
        self.classes.get(&asn.0).copied()
    }

    /// The paper's refined type for an AS. Unclassified ASes default to
    /// `Enterprise` (CAIDA's catch-all for small, invisible networks).
    pub fn refined(&self, asn: AsId, users: u64) -> AsType {
        refine(self.class(asn).unwrap_or(CaidaClass::Enterprise), users)
    }

    /// Parses a CAIDA `as2types` file: `asn|source|type` lines where type is
    /// `Content`, `Enterprise`, or `Transit/Access`; `#` comments allowed.
    pub fn parse<R: BufRead>(reader: R) -> Result<Self, GraphError> {
        let mut db = Self::new();
        for (i, line) in reader.lines().enumerate() {
            let lineno = i + 1;
            let line = line.map_err(|e| GraphError::Parse { line: lineno, message: e.to_string() })?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('|');
            let err = |message: String| GraphError::Parse { line: lineno, message };
            let asn: u32 = parts
                .next()
                .ok_or_else(|| err("missing ASN".into()))?
                .trim()
                .parse()
                .map_err(|e| err(format!("bad ASN: {e}")))?;
            let _source = parts.next().ok_or_else(|| err("missing source field".into()))?;
            let ty = parts.next().ok_or_else(|| err("missing type field".into()))?.trim();
            let class = match ty {
                "Content" => CaidaClass::Content,
                "Enterprise" => CaidaClass::Enterprise,
                "Transit/Access" => CaidaClass::TransitAccess,
                other => return Err(err(format!("unknown AS type {other:?}"))),
            };
            db.insert(AsId(asn), class);
        }
        Ok(db)
    }

    /// Serializes in `as2types` format (round-trips through [`AsTypeDb::parse`]).
    pub fn write(&self) -> String {
        let mut out = String::from("# flatnet as2types export\n");
        for (&asn, &class) in &self.classes {
            let ty = match class {
                CaidaClass::Content => "Content",
                CaidaClass::Enterprise => "Enterprise",
                CaidaClass::TransitAccess => "Transit/Access",
            };
            out.push_str(&format!("{asn}|flatnet|{ty}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refinement_rule_matches_paper() {
        assert_eq!(refine(CaidaClass::Content, 0), AsType::Content);
        assert_eq!(refine(CaidaClass::Content, 10), AsType::Content);
        assert_eq!(refine(CaidaClass::Enterprise, 10), AsType::Enterprise);
        assert_eq!(refine(CaidaClass::TransitAccess, 0), AsType::Transit);
        assert_eq!(refine(CaidaClass::TransitAccess, 1), AsType::Access);
    }

    #[test]
    fn parses_as2types() {
        let text = "# comment\n1|CAIDA_class|Content\n2|CAIDA_class|Transit/Access\n3|CAIDA_class|Enterprise\n";
        let db = AsTypeDb::parse(text.as_bytes()).unwrap();
        assert_eq!(db.len(), 3);
        assert_eq!(db.class(AsId(1)), Some(CaidaClass::Content));
        assert_eq!(db.class(AsId(2)), Some(CaidaClass::TransitAccess));
        assert_eq!(db.refined(AsId(2), 500), AsType::Access);
        assert_eq!(db.refined(AsId(2), 0), AsType::Transit);
    }

    #[test]
    fn unknown_as_defaults_to_enterprise() {
        let db = AsTypeDb::new();
        assert_eq!(db.refined(AsId(77), 0), AsType::Enterprise);
        assert!(db.is_empty());
    }

    #[test]
    fn rejects_unknown_type() {
        let err = AsTypeDb::parse("1|x|Potato\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown AS type"));
    }

    #[test]
    fn rejects_missing_fields() {
        assert!(AsTypeDb::parse("1|x\n".as_bytes()).is_err());
        assert!(AsTypeDb::parse("abc|x|Content\n".as_bytes()).is_err());
    }

    #[test]
    fn roundtrips() {
        let mut db = AsTypeDb::new();
        db.insert(AsId(10), CaidaClass::Content);
        db.insert(AsId(20), CaidaClass::TransitAccess);
        db.insert(AsId(30), CaidaClass::Enterprise);
        let text = db.write();
        let db2 = AsTypeDb::parse(text.as_bytes()).unwrap();
        assert_eq!(db, db2);
    }

    #[test]
    fn all_types_ordered_for_reports() {
        let names: Vec<&str> = AsType::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(names, vec!["content", "transit", "access", "enterprise"]);
    }
}
