//! ProbLink-style iterative refinement of inferred AS relationships.
//!
//! ProbLink (Jin et al., NSDI '19) — "the current state of the art
//! algorithm for inferring AS relationships" per the paper's §2.3 —
//! improves a base inference (Gao / AS-Rank) by iteratively reweighing
//! each link against evidence from the paths it appears on. This module
//! implements the core of that idea as deterministic constraint
//! propagation (not a port of ProbLink's naive-Bayes machinery, whose
//! features need IXP/co-location data we model elsewhere):
//!
//! every observed path must be **valley-free** under the current labels —
//! a climb segment (c2p links), at most one flat step (p2p), then a
//! descent (p2c). Each sweep finds the single relabeling that removes the
//! most violations — ties broken by a degree prior (a label that makes a
//! high-degree AS buy transit from a low-degree one is the least
//! trustworthy, ProbLink's strongest feature) and then by canonical link
//! order — and applies it. Total violations strictly decrease each sweep,
//! so the loop terminates. Valley-freeness alone cannot always identify a
//! unique ground truth (whole consistent relabelings exist); the prior is
//! what steers the descent toward the plausible one.

use crate::graph::{AsGraph, AsGraphBuilder, AsId, Relationship};
use std::collections::BTreeMap;

/// Directed label of a link `(lo, hi)` (canonical ASN order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Label {
    /// `lo` is the customer of `hi`.
    LoCustomer,
    /// `hi` is the customer of `lo`.
    HiCustomer,
    /// Settlement-free peers.
    Peer,
}

/// Result of a refinement run.
#[derive(Debug, Clone)]
pub struct RefinedRelationships {
    /// The refined graph.
    pub graph: AsGraph,
    /// Links whose label changed from the base inference.
    pub relabeled: usize,
    /// Iterations executed (including the final no-change pass).
    pub iterations: usize,
    /// Valley-free violations remaining across all path adjacencies.
    pub remaining_violations: usize,
}

type Key = (u32, u32);

fn key(a: AsId, b: AsId) -> Key {
    (a.0.min(b.0), a.0.max(b.0))
}

/// The per-hop direction a label implies when traversing from `from`:
/// -1 = downhill (provider→customer), 0 = flat, +1 = uphill.
fn step(label: Label, from: AsId, k: Key) -> i8 {
    match label {
        Label::Peer => 0,
        Label::LoCustomer => {
            if from.0 == k.0 {
                1 // customer → provider: climbing
            } else {
                -1
            }
        }
        Label::HiCustomer => {
            if from.0 == k.1 {
                1
            } else {
                -1
            }
        }
    }
}

/// Whether a consecutive pair of steps violates valley-freeness:
/// after going flat (0) or down (-1), the path may never go up (+1) or
/// flat again (a second flat step is also a violation).
fn violates(prev: i8, next: i8) -> bool {
    match prev {
        1 => false,              // still climbing: anything may follow
        0 => next != -1,         // after the single flat step: must descend
        _ => next != -1,         // descending: must keep descending
    }
}

/// Refines a base inference (typically [`crate::relinfer`]'s output)
/// against the observed paths, for at most `max_iters` sweeps.
pub fn refine_relationships(
    base: &AsGraph,
    paths: &[Vec<AsId>],
    max_iters: usize,
) -> RefinedRelationships {
    // Current labels.
    let mut labels: BTreeMap<Key, Label> = BTreeMap::new();
    for &(x, y, rel) in base.edges() {
        let (a, b) = (base.asn(x), base.asn(y));
        let k = key(a, b);
        let label = match rel {
            Relationship::P2p => Label::Peer,
            Relationship::P2c => {
                // x is the provider: the customer is y.
                if b.0 == k.0 {
                    Label::LoCustomer
                } else {
                    Label::HiCustomer
                }
            }
        };
        labels.insert(k, label);
    }
    let original = labels.clone();

    // Index: for each link, the list of (prev link + direction, next link +
    // direction) adjacencies it participates in, as (neighbor key, my
    // `from`, neighbor `from`, i_am_first).
    #[derive(Clone, Copy)]
    struct Adj {
        other: Key,
        my_from: AsId,
        other_from: AsId,
        i_am_first: bool,
    }
    let mut adjacencies: BTreeMap<Key, Vec<Adj>> = BTreeMap::new();
    for p in paths {
        for w in p.windows(3) {
            let (a, b, c) = (w[0], w[1], w[2]);
            if a == b || b == c {
                continue;
            }
            let k1 = key(a, b);
            let k2 = key(b, c);
            if !labels.contains_key(&k1) || !labels.contains_key(&k2) {
                continue;
            }
            adjacencies.entry(k1).or_default().push(Adj {
                other: k2,
                my_from: a,
                other_from: b,
                i_am_first: true,
            });
            adjacencies.entry(k2).or_default().push(Adj {
                other: k1,
                my_from: b,
                other_from: a,
                i_am_first: false,
            });
        }
    }

    let violations_for = |k: Key, label: Label, labels: &BTreeMap<Key, Label>| -> usize {
        adjacencies
            .get(&k)
            .map(|adjs| {
                adjs.iter()
                    .filter(|adj| {
                        let other = labels[&adj.other];
                        let mine = step(label, adj.my_from, k);
                        let theirs = step(other, adj.other_from, adj.other);
                        if adj.i_am_first {
                            violates(mine, theirs)
                        } else {
                            violates(theirs, mine)
                        }
                    })
                    .count()
            })
            .unwrap_or(0)
    };

    // Degree prior: how implausible a label is. A big network buying
    // transit from a much smaller one is suspect; peering is neutral.
    let mut degree: BTreeMap<u32, usize> = BTreeMap::new();
    for n in base.nodes() {
        degree.insert(base.asn(n).0, base.degree(n));
    }
    let prior_penalty = |k: Key, label: Label| -> i64 {
        let (dlo, dhi) = (degree[&k.0] as i64, degree[&k.1] as i64);
        match label {
            Label::Peer => 0,
            Label::LoCustomer => (dlo - dhi).max(0), // lo buys from hi
            Label::HiCustomer => (dhi - dlo).max(0),
        }
    };

    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        // Pick the single best relabeling this sweep:
        // (violations removed, prior improvement, reversed key) — maximal.
        let mut best: Option<(usize, i64, std::cmp::Reverse<Key>, Key, Label)> = None;
        for (&k, &current) in &labels {
            let current_cost = violations_for(k, current, &labels);
            if current_cost == 0 {
                continue;
            }
            for cand in [Label::LoCustomer, Label::HiCustomer, Label::Peer] {
                if cand == current {
                    continue;
                }
                let cost = violations_for(k, cand, &labels);
                if cost >= current_cost {
                    continue;
                }
                let removed = current_cost - cost;
                let prior_gain = prior_penalty(k, current) - prior_penalty(k, cand);
                let entry = (removed, prior_gain, std::cmp::Reverse(k), k, cand);
                if best.as_ref().map(|b| (b.0, b.1, b.2) < (removed, prior_gain, std::cmp::Reverse(k))).unwrap_or(true) {
                    best = Some(entry);
                }
            }
        }
        match best {
            Some((_, _, _, k, label)) => {
                labels.insert(k, label);
            }
            None => break,
        }
    }

    // Remaining violations (each adjacency counted once, from its first
    // link's perspective).
    let mut remaining = 0usize;
    for (k, adjs) in &adjacencies {
        for adj in adjs {
            if adj.i_am_first {
                let mine = step(labels[k], adj.my_from, *k);
                let theirs = step(labels[&adj.other], adj.other_from, adj.other);
                if violates(mine, theirs) {
                    remaining += 1;
                }
            }
        }
    }

    let relabeled = labels.iter().filter(|(k, &l)| original[*k] != l).count();
    let mut b = AsGraphBuilder::new();
    for (&(lo, hi), &label) in &labels {
        match label {
            Label::Peer => {
                b.add_link(AsId(lo), AsId(hi), Relationship::P2p);
            }
            Label::LoCustomer => {
                b.add_link(AsId(hi), AsId(lo), Relationship::P2c);
            }
            Label::HiCustomer => {
                b.add_link(AsId(lo), AsId(hi), Relationship::P2c);
            }
        }
    }
    // Preserve isolated nodes so the universes match.
    for n in base.nodes() {
        if base.degree(n) == 0 {
            b.add_isolated(base.asn(n));
        }
    }
    RefinedRelationships {
        graph: b.build(),
        relabeled,
        iterations,
        remaining_violations: remaining,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NeighborKind;

    fn p(path: &[u32]) -> Vec<AsId> {
        path.iter().map(|&a| AsId(a)).collect()
    }

    /// Base graph with one deliberately flipped link; the paths pin it.
    #[test]
    fn fixes_a_flipped_c2p_link() {
        // Truth: 1 provider of 2 provider of 3; paths climb 3->2->1 to the
        // top then descend 1->4.
        let mut base = AsGraphBuilder::new();
        base.add_link(AsId(1), AsId(2), Relationship::P2c);
        // FLIPPED: base wrongly says 3 is the provider of 2.
        base.add_link(AsId(3), AsId(2), Relationship::P2c);
        base.add_link(AsId(1), AsId(4), Relationship::P2c);
        let base = base.build();
        let paths = vec![p(&[3, 2, 1, 4]), p(&[3, 2, 1]), p(&[4, 1, 2, 3])];
        // With the flip, path [3,2,1,4] steps: (3->2) down, (2->1) up: a
        // valley. Refinement must relabel (2,3) so 3 is the customer.
        let out = refine_relationships(&base, &paths, 10);
        let g = &out.graph;
        let n2 = g.index_of(AsId(2)).unwrap();
        let n3 = g.index_of(AsId(3)).unwrap();
        assert_eq!(g.kind_between(n2, n3), Some(NeighborKind::Customer));
        assert_eq!(out.relabeled, 1);
        assert_eq!(out.remaining_violations, 0);
    }

    #[test]
    fn consistent_base_is_untouched() {
        let mut base = AsGraphBuilder::new();
        base.add_link(AsId(1), AsId(2), Relationship::P2c);
        base.add_link(AsId(1), AsId(3), Relationship::P2c);
        base.add_link(AsId(2), AsId(4), Relationship::P2c);
        let base = base.build();
        let paths = vec![p(&[4, 2, 1, 3]), p(&[3, 1, 2, 4])];
        let out = refine_relationships(&base, &paths, 10);
        assert_eq!(out.relabeled, 0);
        assert_eq!(out.remaining_violations, 0);
        assert_eq!(out.graph.edges(), base.edges());
    }

    #[test]
    fn double_peer_step_is_a_violation_to_fix() {
        // Truth: 1-2 peer, 2 provider of 3. Base wrongly has 2-3 as peer:
        // path [1,2,3] would go flat-flat.
        let mut base = AsGraphBuilder::new();
        base.add_link(AsId(1), AsId(2), Relationship::P2p);
        base.add_link(AsId(2), AsId(3), Relationship::P2p);
        let base = base.build();
        let paths = vec![p(&[1, 2, 3])];
        let out = refine_relationships(&base, &paths, 10);
        assert_eq!(out.remaining_violations, 0);
        // Valley-freeness alone cannot tell which of the two flat steps is
        // wrong (both single-flip solutions are consistent); the guarantee
        // is consistency with exactly one relabeling.
        assert_eq!(out.relabeled, 1);
        let g = &out.graph;
        let n1 = g.index_of(AsId(1)).unwrap();
        let n2 = g.index_of(AsId(2)).unwrap();
        let n3 = g.index_of(AsId(3)).unwrap();
        let still_peer = [g.kind_between(n1, n2), g.kind_between(n2, n3)]
            .iter()
            .filter(|k| **k == Some(NeighborKind::Peer))
            .count();
        assert_eq!(still_peer, 1);
    }

    #[test]
    fn empty_inputs_and_termination() {
        let base = AsGraphBuilder::new().build();
        let out = refine_relationships(&base, &[], 5);
        assert_eq!(out.relabeled, 0);
        assert_eq!(out.iterations, 1);
        // max_iters == 0: nothing runs, base preserved.
        let mut b = AsGraphBuilder::new();
        b.add_link(AsId(1), AsId(2), Relationship::P2p);
        let base = b.build();
        let out = refine_relationships(&base, &[p(&[1, 2])], 0);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.graph.edges(), base.edges());
    }
}
