//! A whois-style allocation registry: who an address block is *allocated*
//! to, independent of whether it is announced in BGP.
//!
//! §5 of the paper: "unresolved IP addresses were registered in whois and
//! frequently belonged to IXPs but were not advertised globally into BGP.
//! To resolve these hops to ASes, we now use PeeringDB (when an AS lists the
//! IP address) or whois information." This registry captures that fallback:
//! allocations cover announced space *and* infrastructure-only space.

use crate::ipv4::Ipv4Prefix;
use crate::trie::PrefixTrie;
use flatnet_asgraph::AsId;
use std::net::Ipv4Addr;

/// One allocation record.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Allocation {
    /// AS the block is registered to (IXPs register under their own AS).
    pub asn: AsId,
    /// Registry organization string, e.g. `"NL-IX B.V."`.
    pub org: String,
}

/// Longest-prefix-match registry of address allocations.
#[derive(Debug, Clone, Default)]
pub struct WhoisDb {
    trie: PrefixTrie<Allocation>,
}

impl WhoisDb {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of allocation records.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// Registers an allocation (most-specific lookup wins on overlap).
    pub fn allocate(&mut self, prefix: Ipv4Prefix, asn: AsId, org: impl Into<String>) {
        self.trie.insert(prefix, Allocation { asn, org: org.into() });
    }

    /// The allocation covering `ip`, if any.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<&Allocation> {
        self.trie.lookup(ip).map(|(_, a)| a)
    }

    /// Shorthand for the allocated AS.
    pub fn resolve(&self, ip: Ipv4Addr) -> Option<AsId> {
        self.lookup(ip).map(|a| a.asn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn resolves_unannounced_infrastructure_space() {
        let mut db = WhoisDb::new();
        db.allocate("193.238.116.0/22".parse().unwrap(), AsId(34307), "NL-IX B.V.");
        let a = db.lookup(ip("193.238.117.9")).unwrap();
        assert_eq!(a.asn, AsId(34307));
        assert_eq!(a.org, "NL-IX B.V.");
        assert_eq!(db.resolve(ip("8.8.8.8")), None);
    }

    #[test]
    fn most_specific_allocation_wins() {
        let mut db = WhoisDb::new();
        db.allocate("10.0.0.0/8".parse().unwrap(), AsId(1), "big");
        db.allocate("10.5.0.0/16".parse().unwrap(), AsId(2), "small");
        assert_eq!(db.resolve(ip("10.5.1.1")), Some(AsId(2)));
        assert_eq!(db.resolve(ip("10.6.1.1")), Some(AsId(1)));
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn empty_registry() {
        let db = WhoisDb::new();
        assert!(db.is_empty());
        assert_eq!(db.resolve(ip("1.1.1.1")), None);
    }
}
