//! Team Cymru-style IP→origin-ASN database over *globally announced*
//! prefixes.
//!
//! The real service answers "which origin AS announces the most specific
//! BGP prefix covering this IP?". Our database is fed either from synthetic
//! announcements (`flatnet-netgen`) or from a simple `prefix|asn` text dump,
//! and answers via longest-prefix match. Crucially for the paper's §5, this
//! database only knows **announced** space: IXP peering LANs that are not in
//! BGP miss here, and IXP LANs announced by the IXP's own AS resolve to the
//! IXP AS rather than the member AS — both failure modes the inference
//! pipeline must handle.

use crate::ipv4::Ipv4Prefix;
use crate::trie::PrefixTrie;
use flatnet_asgraph::ingest::{ParseDiagnostics, ParseOptions, RecordLocation};
use flatnet_asgraph::AsId;
use std::net::Ipv4Addr;

/// Longest-prefix-match database of announced prefixes and origin ASes.
#[derive(Debug, Clone, Default)]
pub struct AnnouncedDb {
    trie: PrefixTrie<AsId>,
}

impl AnnouncedDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of announced prefixes.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// Registers an announcement. Re-announcing the same prefix overwrites
    /// the origin (last one wins, as a route collector would converge).
    pub fn announce(&mut self, prefix: Ipv4Prefix, origin: AsId) {
        self.trie.insert(prefix, origin);
    }

    /// The origin AS of the most specific announced prefix covering `ip`.
    pub fn resolve(&self, ip: Ipv4Addr) -> Option<AsId> {
        self.trie.lookup(ip).map(|(_, &asn)| asn)
    }

    /// As [`AnnouncedDb::resolve`], also reporting the matched prefix.
    pub fn resolve_with_prefix(&self, ip: Ipv4Addr) -> Option<(Ipv4Prefix, AsId)> {
        self.trie.lookup(ip).map(|(p, &asn)| (p, asn))
    }

    /// Whether this exact prefix is announced.
    pub fn is_announced(&self, prefix: Ipv4Prefix) -> bool {
        self.trie.get(prefix).is_some()
    }

    /// Iterates announcements in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Prefix, AsId)> + '_ {
        self.trie.iter().map(|(p, &asn)| (p, asn))
    }

    /// Parses a `prefix|asn` text dump (one per line, `#` comments).
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::parse_with(text, &ParseOptions::strict()).map(|(db, _)| db)
    }

    /// [`AnnouncedDb::parse`] with explicit strictness; lenient mode skips
    /// malformed lines (up to the error budget) and tallies them in the
    /// returned [`ParseDiagnostics`].
    pub fn parse_with(
        text: &str,
        opts: &ParseOptions,
    ) -> Result<(Self, ParseDiagnostics), String> {
        let mut db = Self::new();
        let mut diag = ParseDiagnostics::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match Self::parse_line(line, i + 1) {
                Ok((prefix, origin)) => {
                    diag.record_ok();
                    db.announce(prefix, origin);
                }
                Err(e) => {
                    if opts.budget_allows(diag.dropped()) {
                        diag.record_dropped(RecordLocation::Line(i + 1), e);
                    } else if opts.strict {
                        return Err(e);
                    } else {
                        diag.record_dropped(RecordLocation::Line(i + 1), e);
                        return Err(format!(
                            "line {}: {}",
                            i + 1,
                            opts.budget_exhausted_message(diag.issues.last().unwrap())
                        ));
                    }
                }
            }
        }
        diag.publish("prefixdb");
        Ok((db, diag))
    }

    fn parse_line(line: &str, lineno: usize) -> Result<(Ipv4Prefix, AsId), String> {
        let (pfx, asn) = line
            .split_once('|')
            .ok_or_else(|| format!("line {lineno}: expected prefix|asn"))?;
        let prefix: Ipv4Prefix = pfx
            .trim()
            .parse()
            .map_err(|e| format!("line {lineno}: {e}"))?;
        let asn: u32 = asn
            .trim()
            .parse()
            .map_err(|e| format!("line {lineno}: bad ASN: {e}"))?;
        Ok((prefix, AsId(asn)))
    }

    /// Serializes as `prefix|asn` lines (round-trips through [`AnnouncedDb::parse`]).
    pub fn write(&self) -> String {
        let mut out = String::from("# flatnet announced-prefix dump\n");
        for (p, asn) in self.iter() {
            out.push_str(&format!("{p}|{}\n", asn.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn resolves_most_specific_origin() {
        let mut db = AnnouncedDb::new();
        db.announce("10.0.0.0/8".parse().unwrap(), AsId(100));
        db.announce("10.1.0.0/16".parse().unwrap(), AsId(200));
        assert_eq!(db.resolve(ip("10.1.1.1")), Some(AsId(200)));
        assert_eq!(db.resolve(ip("10.2.1.1")), Some(AsId(100)));
        assert_eq!(db.resolve(ip("11.0.0.1")), None);
    }

    #[test]
    fn unannounced_ixp_space_misses() {
        // The NL-IX example from §4.1: 193.238.116.0/22 is NOT in BGP.
        let mut db = AnnouncedDb::new();
        db.announce("193.0.0.0/8".parse().unwrap(), AsId(3333));
        // The /8 covers it, so Cymru-style resolution gives the covering
        // announcement — the *wrong* AS for an IXP peering address. The
        // realistic case where nothing covers it:
        let empty = AnnouncedDb::new();
        assert_eq!(empty.resolve(ip("193.238.116.5")), None);
        // And the misleading case:
        assert_eq!(db.resolve(ip("193.238.116.5")), Some(AsId(3333)));
    }

    #[test]
    fn reannouncement_overwrites() {
        let mut db = AnnouncedDb::new();
        db.announce("10.0.0.0/8".parse().unwrap(), AsId(1));
        db.announce("10.0.0.0/8".parse().unwrap(), AsId(2));
        assert_eq!(db.len(), 1);
        assert_eq!(db.resolve(ip("10.0.0.1")), Some(AsId(2)));
    }

    #[test]
    fn parse_and_write_roundtrip() {
        let text = "# dump\n10.0.0.0/8|100\n192.0.2.0/24|65000\n";
        let db = AnnouncedDb::parse(text).unwrap();
        assert_eq!(db.len(), 2);
        let db2 = AnnouncedDb::parse(&db.write()).unwrap();
        assert_eq!(db.iter().collect::<Vec<_>>(), db2.iter().collect::<Vec<_>>());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(AnnouncedDb::parse("10.0.0.0/8\n").is_err());
        assert!(AnnouncedDb::parse("10.0.0.0/99|1\n").is_err());
        assert!(AnnouncedDb::parse("10.0.0.0/8|asn\n").is_err());
    }

    #[test]
    fn lenient_parse_skips_and_counts_bad_lines() {
        let text = "10.0.0.0/8|100\nnot-a-line\n10.0.0.0/99|1\n192.0.2.0/24|65000\n";
        let (db, diag) = AnnouncedDb::parse_with(text, &ParseOptions::lenient()).unwrap();
        assert_eq!(diag.dropped(), 2, "{:?}", diag.issues);
        assert_eq!(diag.records_ok, 2);
        assert_eq!(db.len(), 2);
        assert_eq!(diag.issues[0].location, RecordLocation::Line(2));
        assert_eq!(diag.issues[1].location, RecordLocation::Line(3));
        // Strict fails at the first bad line.
        let err = AnnouncedDb::parse_with(text, &ParseOptions::strict()).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        // An exhausted budget aborts even in lenient mode.
        let err = AnnouncedDb::parse_with(text, &ParseOptions::lenient().with_max_errors(1))
            .unwrap_err();
        assert!(err.contains("error budget exhausted"), "{err}");
    }

    #[test]
    fn resolve_with_prefix_reports_match() {
        let mut db = AnnouncedDb::new();
        db.announce("10.1.0.0/16".parse().unwrap(), AsId(9));
        let (p, asn) = db.resolve_with_prefix(ip("10.1.2.3")).unwrap();
        assert_eq!(p, "10.1.0.0/16".parse().unwrap());
        assert_eq!(asn, AsId(9));
        assert!(db.is_announced("10.1.0.0/16".parse().unwrap()));
        assert!(!db.is_announced("10.0.0.0/8".parse().unwrap()));
    }
}
