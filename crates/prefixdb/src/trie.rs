//! A binary longest-prefix-match trie over IPv4 prefixes.
//!
//! This is the core routing-table data structure underneath every IP→ASN
//! database in the crate. It is a plain bitwise trie (one node per prefix
//! bit) — simple and robust, per the smoltcp design philosophy, and fast
//! enough: a lookup touches at most 32 nodes.

use crate::ipv4::Ipv4Prefix;
use std::net::Ipv4Addr;

const NO_CHILD: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<T> {
    children: [u32; 2],
    value: Option<T>,
}

impl<T> Node<T> {
    fn new() -> Self {
        Node { children: [NO_CHILD, NO_CHILD], value: None }
    }
}

/// A map from IPv4 prefixes to values with longest-prefix-match lookup.
///
/// ```
/// use flatnet_prefixdb::{PrefixTrie, Ipv4Prefix};
/// let mut t = PrefixTrie::new();
/// t.insert("10.0.0.0/8".parse().unwrap(), "coarse");
/// t.insert("10.1.0.0/16".parse().unwrap(), "fine");
/// let (pfx, v) = t.lookup("10.1.2.3".parse().unwrap()).unwrap();
/// assert_eq!(*v, "fine");
/// assert_eq!(pfx, "10.1.0.0/16".parse().unwrap());
/// assert_eq!(t.lookup("10.9.9.9".parse().unwrap()).map(|(_, v)| *v), Some("coarse"));
/// assert!(t.lookup("11.0.0.0".parse().unwrap()).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PrefixTrie { nodes: vec![Node::new()], len: 0 }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value for a prefix, returning the previous value if the
    /// exact prefix was already present.
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: T) -> Option<T> {
        let mut node = 0usize;
        let bits = prefix.network_bits();
        for i in 0..prefix.len() {
            let bit = ((bits >> (31 - i)) & 1) as usize;
            let child = self.nodes[node].children[bit];
            node = if child == NO_CHILD {
                let idx = self.nodes.len() as u32;
                self.nodes.push(Node::new());
                self.nodes[node].children[bit] = idx;
                idx as usize
            } else {
                child as usize
            };
        }
        let old = self.nodes[node].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Longest-prefix-match lookup: the most specific stored prefix
    /// containing `ip`, with its value.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<(Ipv4Prefix, &T)> {
        let bits = u32::from(ip);
        let mut node = 0usize;
        let mut best: Option<(u8, &T)> = self.nodes[0].value.as_ref().map(|v| (0, v));
        for i in 0..32u8 {
            let bit = ((bits >> (31 - i)) & 1) as usize;
            let child = self.nodes[node].children[bit];
            if child == NO_CHILD {
                break;
            }
            node = child as usize;
            if let Some(v) = self.nodes[node].value.as_ref() {
                best = Some((i + 1, v));
            }
        }
        best.map(|(len, v)| (Ipv4Prefix::new(ip, len), v))
    }

    /// Exact-match lookup of a stored prefix.
    pub fn get(&self, prefix: Ipv4Prefix) -> Option<&T> {
        let bits = prefix.network_bits();
        let mut node = 0usize;
        for i in 0..prefix.len() {
            let bit = ((bits >> (31 - i)) & 1) as usize;
            let child = self.nodes[node].children[bit];
            if child == NO_CHILD {
                return None;
            }
            node = child as usize;
        }
        self.nodes[node].value.as_ref()
    }

    /// Iterates all `(prefix, value)` pairs in lexicographic prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Prefix, &T)> {
        // Explicit stack DFS, visiting the 0-child before the 1-child.
        let mut out = Vec::with_capacity(self.len);
        let mut stack: Vec<(usize, u32, u8)> = vec![(0, 0, 0)];
        while let Some((node, bits, depth)) = stack.pop() {
            if let Some(v) = self.nodes[node].value.as_ref() {
                out.push((Ipv4Prefix::new(Ipv4Addr::from(bits), depth), v));
            }
            // Push 1-child first so the 0-child is processed first (LIFO).
            for bit in [1u32, 0u32] {
                let child = self.nodes[node].children[bit as usize];
                if child != NO_CHILD {
                    let next_bits = bits | (bit << (31 - depth));
                    stack.push((child as usize, next_bits, depth + 1));
                }
            }
        }
        out.sort_by_key(|&(p, _)| p);
        out.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }
    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn longest_match_wins() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        t.insert(p("10.1.2.0/24"), 24);
        assert_eq!(t.lookup(ip("10.1.2.3")).unwrap().1, &24);
        assert_eq!(t.lookup(ip("10.1.9.9")).unwrap().1, &16);
        assert_eq!(t.lookup(ip("10.9.9.9")).unwrap().1, &8);
        assert_eq!(t.lookup(ip("11.0.0.1")).unwrap().1, &0);
    }

    #[test]
    fn miss_without_default() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), ());
        assert!(t.lookup(ip("11.0.0.1")).is_none());
    }

    #[test]
    fn insert_replaces_and_reports_old() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&2));
    }

    #[test]
    fn exact_get_does_not_aggregate() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 8);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&8));
        assert_eq!(t.get(p("10.0.0.0/9")), None);
        assert_eq!(t.get(p("10.0.0.0/7")), None);
    }

    #[test]
    fn slash32_entries() {
        let mut t = PrefixTrie::new();
        t.insert(p("192.0.2.1/32"), "host");
        assert_eq!(t.lookup(ip("192.0.2.1")).unwrap().1, &"host");
        assert!(t.lookup(ip("192.0.2.2")).is_none());
    }

    #[test]
    fn reported_prefix_matches_stored_one() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.1.0.0/16"), ());
        let (found, _) = t.lookup(ip("10.1.200.7")).unwrap();
        assert_eq!(found, p("10.1.0.0/16"));
    }

    #[test]
    fn iteration_in_prefix_order() {
        let mut t = PrefixTrie::new();
        let prefixes = [p("10.1.0.0/16"), p("9.0.0.0/8"), p("10.0.0.0/8"), p("0.0.0.0/0")];
        for (i, &pf) in prefixes.iter().enumerate() {
            t.insert(pf, i);
        }
        let got: Vec<Ipv4Prefix> = t.iter().map(|(pf, _)| pf).collect();
        let mut want = prefixes.to_vec();
        want.sort();
        assert_eq!(got, want);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(Ipv4Prefix::default_route(), "any");
        assert_eq!(t.lookup(ip("255.255.255.255")).unwrap().1, &"any");
        assert_eq!(t.lookup(ip("0.0.0.0")).unwrap().1, &"any");
    }

    // Property: for random prefix sets, LPM equals the brute-force answer.
    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
            (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Ipv4Prefix::new(Ipv4Addr::from(bits), len))
        }

        proptest! {
            #[test]
            fn lpm_matches_brute_force(prefixes in proptest::collection::vec(arb_prefix(), 1..64), probe in any::<u32>()) {
                let mut t = PrefixTrie::new();
                for (i, &pf) in prefixes.iter().enumerate() {
                    t.insert(pf, i);
                }
                let ip = Ipv4Addr::from(probe);
                // Brute force: most specific containing prefix; on duplicates the
                // *last* insert wins.
                let expect = prefixes
                    .iter()
                    .enumerate()
                    .filter(|(_, pf)| pf.contains(ip))
                    .max_by_key(|(i, pf)| (pf.len(), *i))
                    .map(|(i, _)| i);
                let got = t.lookup(ip).map(|(_, &v)| v);
                prop_assert_eq!(got, expect);
            }

            #[test]
            fn len_counts_distinct_prefixes(prefixes in proptest::collection::vec(arb_prefix(), 0..64)) {
                let mut t = PrefixTrie::new();
                for &pf in &prefixes {
                    t.insert(pf, ());
                }
                let mut distinct = prefixes.clone();
                distinct.sort();
                distinct.dedup();
                prop_assert_eq!(t.len(), distinct.len());
            }
        }
    }
}
