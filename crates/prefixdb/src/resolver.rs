//! The paper's layered IP→ASN resolution pipeline (§4.1, §5).
//!
//! Two source orders are provided so the §5 methodology-iteration experiment
//! can be reproduced:
//!
//! * [`ResolutionOrder::CymruFirst`] — the paper's *initial* methodology:
//!   announced-prefix LPM first, PeeringDB second, whois last. IXP LAN
//!   addresses whose prefix **is** announced (by the IXP's AS) incorrectly
//!   resolve to the IXP AS here.
//! * [`ResolutionOrder::PeeringDbFirst`] — the *final* methodology:
//!   PeeringDB `netixlan` exact matches take precedence, fixing the IXP
//!   misattributions and lowering both FDR and FNR.

use crate::cymru::AnnouncedDb;
use crate::peeringdb::PeeringDb;
use crate::whois::WhoisDb;
use flatnet_asgraph::AsId;
use std::net::Ipv4Addr;

/// Which data source produced a resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolutionSource {
    /// PeeringDB `netixlan` exact-address record.
    PeeringDb,
    /// Announced-prefix (Team Cymru-style) longest-prefix match.
    Cymru,
    /// Whois allocation registry.
    Whois,
}

impl ResolutionSource {
    /// Report label.
    pub fn name(self) -> &'static str {
        match self {
            ResolutionSource::PeeringDb => "peeringdb",
            ResolutionSource::Cymru => "cymru",
            ResolutionSource::Whois => "whois",
        }
    }
}

/// The order sources are consulted in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolutionOrder {
    /// Initial methodology: Cymru → PeeringDB → whois.
    CymruFirst,
    /// Final methodology: PeeringDB → Cymru → whois.
    PeeringDbFirst,
}

/// A successful resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    /// The AS the address was attributed to.
    pub asn: AsId,
    /// Which source answered.
    pub source: ResolutionSource,
}

/// The three-source resolver.
#[derive(Debug, Clone, Default)]
pub struct Resolver {
    /// PeeringDB-like dataset (exact IXP LAN addresses).
    pub peeringdb: PeeringDb,
    /// Announced-prefix database.
    pub announced: AnnouncedDb,
    /// Whois-like allocation registry.
    pub whois: WhoisDb,
}

impl Resolver {
    /// A resolver over the three given sources.
    pub fn new(peeringdb: PeeringDb, announced: AnnouncedDb, whois: WhoisDb) -> Self {
        Resolver { peeringdb, announced, whois }
    }

    /// Resolves `ip` consulting sources in the given order.
    pub fn resolve(&self, ip: Ipv4Addr, order: ResolutionOrder) -> Option<Resolution> {
        let pdb = || {
            self.peeringdb
                .resolve(ip)
                .map(|asn| Resolution { asn, source: ResolutionSource::PeeringDb })
        };
        let cymru = || {
            self.announced
                .resolve(ip)
                .map(|asn| Resolution { asn, source: ResolutionSource::Cymru })
        };
        let whois = || {
            self.whois
                .resolve(ip)
                .map(|asn| Resolution { asn, source: ResolutionSource::Whois })
        };
        match order {
            ResolutionOrder::CymruFirst => cymru().or_else(pdb).or_else(whois),
            ResolutionOrder::PeeringDbFirst => pdb().or_else(cymru).or_else(whois),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// An IXP LAN announced into BGP by the IXP's AS (64600) while member
    /// AS 15169 holds one address — the §5 false-negative scenario.
    fn resolver() -> Resolver {
        let mut pdb = PeeringDb::new();
        let ixp = pdb.add_ixp("EX-IX", Some(AsId(64600)), vec!["203.0.113.0/24".parse().unwrap()]);
        pdb.add_netixlan(AsId(15169), ixp, ip("203.0.113.10"));
        let mut ann = AnnouncedDb::new();
        ann.announce("203.0.113.0/24".parse().unwrap(), AsId(64600));
        ann.announce("8.8.8.0/24".parse().unwrap(), AsId(15169));
        let mut whois = WhoisDb::new();
        whois.allocate("198.51.100.0/24".parse().unwrap(), AsId(64700), "Example-IX");
        Resolver::new(pdb, ann, whois)
    }

    #[test]
    fn cymru_first_misattributes_ixp_member_addresses() {
        let r = resolver();
        let res = r.resolve(ip("203.0.113.10"), ResolutionOrder::CymruFirst).unwrap();
        assert_eq!(res.asn, AsId(64600)); // the IXP AS — wrong for inference
        assert_eq!(res.source, ResolutionSource::Cymru);
    }

    #[test]
    fn peeringdb_first_fixes_the_misattribution() {
        let r = resolver();
        let res = r.resolve(ip("203.0.113.10"), ResolutionOrder::PeeringDbFirst).unwrap();
        assert_eq!(res.asn, AsId(15169));
        assert_eq!(res.source, ResolutionSource::PeeringDb);
    }

    #[test]
    fn announced_space_resolves_in_both_orders() {
        let r = resolver();
        for order in [ResolutionOrder::CymruFirst, ResolutionOrder::PeeringDbFirst] {
            let res = r.resolve(ip("8.8.8.8"), order).unwrap();
            assert_eq!(res.asn, AsId(15169));
            assert_eq!(res.source, ResolutionSource::Cymru);
        }
    }

    #[test]
    fn whois_is_the_last_resort() {
        let r = resolver();
        let res = r.resolve(ip("198.51.100.7"), ResolutionOrder::PeeringDbFirst).unwrap();
        assert_eq!(res.asn, AsId(64700));
        assert_eq!(res.source, ResolutionSource::Whois);
    }

    #[test]
    fn unknown_space_is_unresolved() {
        let r = resolver();
        assert!(r.resolve(ip("100.64.0.1"), ResolutionOrder::PeeringDbFirst).is_none());
    }

    #[test]
    fn source_names() {
        assert_eq!(ResolutionSource::PeeringDb.name(), "peeringdb");
        assert_eq!(ResolutionSource::Cymru.name(), "cymru");
        assert_eq!(ResolutionSource::Whois.name(), "whois");
    }
}
