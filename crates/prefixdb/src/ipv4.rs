//! IPv4 prefixes (`a.b.c.d/len`) with canonical network-address storage.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 prefix in CIDR notation.
///
/// The stored network address always has its host bits zeroed, so two
/// `Ipv4Prefix` values compare equal iff they denote the same prefix.
///
/// ```
/// use flatnet_prefixdb::Ipv4Prefix;
/// let p: Ipv4Prefix = "10.1.2.3/16".parse().unwrap();
/// assert_eq!(p.to_string(), "10.1.0.0/16");
/// assert!(p.contains("10.1.255.255".parse().unwrap()));
/// assert!(!p.contains("10.2.0.0".parse().unwrap()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub struct Ipv4Prefix {
    /// Network address bits (host bits zero).
    network: u32,
    /// Prefix length, 0..=32.
    len: u8,
}

/// Error parsing a CIDR string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixParseError {
    /// Missing or malformed `/len` part.
    BadLength(String),
    /// Malformed dotted-quad address.
    BadAddress(String),
}

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixParseError::BadLength(s) => write!(f, "bad prefix length in {s:?}"),
            PrefixParseError::BadAddress(s) => write!(f, "bad IPv4 address in {s:?}"),
        }
    }
}

impl std::error::Error for PrefixParseError {}

impl Ipv4Prefix {
    /// Creates a prefix from an address and length, zeroing host bits.
    /// Lengths above 32 are clamped to 32.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        let len = len.min(32);
        let bits = u32::from(addr);
        Ipv4Prefix { network: bits & Self::mask(len), len }
    }

    /// The all-addresses prefix `0.0.0.0/0`.
    pub fn default_route() -> Self {
        Ipv4Prefix { network: 0, len: 0 }
    }

    #[inline]
    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.network)
    }

    /// Raw network bits.
    #[inline]
    pub fn network_bits(&self) -> u32 {
        self.network
    }

    /// Prefix length.
    #[inline]
    #[allow(clippy::len_without_is_empty)] // a /0 prefix is not "empty"
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether the prefix is `/0` (matches everything).
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Whether `ip` falls inside this prefix.
    #[inline]
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        (u32::from(ip) & Self::mask(self.len)) == self.network
    }

    /// Whether `other` is fully contained in `self` (equality counts).
    pub fn covers(&self, other: &Ipv4Prefix) -> bool {
        self.len <= other.len && (other.network & Self::mask(self.len)) == self.network
    }

    /// Number of addresses in the prefix (2^(32-len)), as u64 so `/0` fits.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len as u32)
    }

    /// The `i`-th address of the prefix (0 = network address). Panics if out
    /// of range; callers always index within [`Ipv4Prefix::size`].
    pub fn addr(&self, i: u64) -> Ipv4Addr {
        assert!(i < self.size(), "address index {i} out of range for {self}");
        Ipv4Addr::from(self.network.wrapping_add(i as u32))
    }

    /// Splits into the two `len+1` halves; `None` for a `/32`.
    pub fn split(&self) -> Option<(Ipv4Prefix, Ipv4Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let len = self.len + 1;
        let lo = Ipv4Prefix { network: self.network, len };
        let hi = Ipv4Prefix { network: self.network | (1u32 << (32 - len)), len };
        Some((lo, hi))
    }

    /// Enumerates the `2^(target_len - len)` sub-prefixes of `target_len`.
    /// Returns an empty vector if `target_len < len` or `target_len > 32`.
    pub fn subnets(&self, target_len: u8) -> Vec<Ipv4Prefix> {
        if target_len < self.len || target_len > 32 {
            return Vec::new();
        }
        let count = 1u64 << (target_len - self.len);
        let step = 1u64 << (32 - target_len);
        (0..count)
            .map(|i| Ipv4Prefix {
                network: self.network.wrapping_add((i * step) as u32),
                len: target_len,
            })
            .collect()
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_s, len_s) = s
            .split_once('/')
            .ok_or_else(|| PrefixParseError::BadLength(s.to_string()))?;
        let addr: Ipv4Addr = addr_s
            .trim()
            .parse()
            .map_err(|_| PrefixParseError::BadAddress(s.to_string()))?;
        let len: u8 = len_s
            .trim()
            .parse()
            .map_err(|_| PrefixParseError::BadLength(s.to_string()))?;
        if len > 32 {
            return Err(PrefixParseError::BadLength(s.to_string()));
        }
        Ok(Ipv4Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalizes_host_bits() {
        assert_eq!(p("10.1.2.3/16"), p("10.1.0.0/16"));
        assert_eq!(p("10.1.2.3/16").to_string(), "10.1.0.0/16");
        assert_eq!(p("255.255.255.255/0"), Ipv4Prefix::default_route());
    }

    #[test]
    fn contains_and_covers() {
        let net = p("192.0.2.0/24");
        assert!(net.contains("192.0.2.0".parse().unwrap()));
        assert!(net.contains("192.0.2.255".parse().unwrap()));
        assert!(!net.contains("192.0.3.0".parse().unwrap()));
        assert!(p("192.0.2.0/24").covers(&p("192.0.2.128/25")));
        assert!(p("192.0.2.0/24").covers(&p("192.0.2.0/24")));
        assert!(!p("192.0.2.128/25").covers(&p("192.0.2.0/24")));
        assert!(Ipv4Prefix::default_route().covers(&p("8.8.8.0/24")));
    }

    #[test]
    fn sizes_and_addresses() {
        assert_eq!(p("10.0.0.0/8").size(), 1 << 24);
        assert_eq!(p("1.2.3.4/32").size(), 1);
        assert_eq!(Ipv4Prefix::default_route().size(), 1u64 << 32);
        assert_eq!(p("192.0.2.0/24").addr(5), "192.0.2.5".parse::<Ipv4Addr>().unwrap());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn addr_out_of_range_panics() {
        p("1.2.3.4/32").addr(1);
    }

    #[test]
    fn split_halves() {
        let (lo, hi) = p("10.0.0.0/8").split().unwrap();
        assert_eq!(lo, p("10.0.0.0/9"));
        assert_eq!(hi, p("10.128.0.0/9"));
        assert!(p("1.1.1.1/32").split().is_none());
    }

    #[test]
    fn subnets_enumeration() {
        let subs = p("192.0.2.0/24").subnets(26);
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0], p("192.0.2.0/26"));
        assert_eq!(subs[3], p("192.0.2.192/26"));
        assert_eq!(p("192.0.2.0/24").subnets(24), vec![p("192.0.2.0/24")]);
        assert!(p("192.0.2.0/24").subnets(23).is_empty());
        assert!(p("192.0.2.0/24").subnets(33).is_empty());
    }

    #[test]
    fn parse_errors() {
        assert!(matches!("10.0.0.0".parse::<Ipv4Prefix>(), Err(PrefixParseError::BadLength(_))));
        assert!(matches!("10.0.0.0/33".parse::<Ipv4Prefix>(), Err(PrefixParseError::BadLength(_))));
        assert!(matches!("10.0.0/8".parse::<Ipv4Prefix>(), Err(PrefixParseError::BadAddress(_))));
        assert!(matches!("10.0.0.0/x".parse::<Ipv4Prefix>(), Err(PrefixParseError::BadLength(_))));
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut v = vec![p("10.0.0.0/8"), p("9.0.0.0/8"), p("10.0.0.0/16")];
        v.sort();
        assert_eq!(v, vec![p("9.0.0.0/8"), p("10.0.0.0/8"), p("10.0.0.0/16")]);
    }
}
