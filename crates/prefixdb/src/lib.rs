#![warn(missing_docs)]

//! # flatnet-prefixdb — IPv4 prefixes and the paper's IP→ASN resolution stack
//!
//! The neighbor-inference methodology of "Cloud Provider Connectivity in the
//! Flat Internet" (IMC 2020, §4.1/§5) hinges on mapping traceroute hop IP
//! addresses to the AS that operates the router. The paper resolves
//! iteratively through three sources:
//!
//! 1. **PeeringDB** ([`peeringdb`]) — preferred, because IXP peering LANs
//!    often use address space that is *not announced in BGP* (e.g. the
//!    NL-IX `193.238.116.0/22` example) or is announced by the IXP's own AS
//!    while the individual addresses belong to members;
//! 2. a **Team Cymru-style announced-prefix database** ([`cymru`]) — longest
//!    prefix match over globally announced prefixes and their origin ASes;
//! 3. a **whois-style allocation registry** ([`whois`]) — covers allocated
//!    but unannounced space.
//!
//! [`resolver::Resolver`] chains the three in either the paper's *initial*
//! order (Cymru before PeeringDB — which §5 shows misinfers IXP addresses)
//! or its *final* order (PeeringDB first), so the validation experiment can
//! reproduce the methodology iterations.
//!
//! Everything is built on two from-scratch primitives: [`ipv4::Ipv4Prefix`]
//! and the binary longest-prefix-match trie [`trie::PrefixTrie`].

pub mod aggregate;
pub mod cymru;
pub mod ipv4;
pub mod peeringdb;
pub mod resolver;
pub mod trie;
pub mod whois;

pub use aggregate::aggregate;
pub use cymru::AnnouncedDb;
pub use ipv4::{Ipv4Prefix, PrefixParseError};
pub use peeringdb::{FacilityId, IxpId, PeeringDb};
pub use resolver::{Resolution, ResolutionOrder, ResolutionSource, Resolver};
pub use trie::PrefixTrie;
pub use whois::WhoisDb;
