//! Route aggregation: compacting an announced-prefix table without
//! changing what any address resolves to.
//!
//! Real RIBs are full of deaggregated space; CAIDA-scale tooling (and our
//! `flatnet gen` bundles) benefit from compaction. Two resolution-
//! preserving transformations are applied to fixpoint:
//!
//! * **sibling merge** — two half-prefixes with the same origin whose
//!   parent would not shadow a *different* origin's covering announcement
//!   collapse into the parent;
//! * **covered-prefix elision** — a prefix whose nearest covering
//!   announcement has the same origin is redundant and dropped.
//!
//! The central invariant (checked by property tests): for every IPv4
//! address, `aggregate(db).resolve(ip) == db.resolve(ip)`.

use crate::cymru::AnnouncedDb;
use crate::ipv4::Ipv4Prefix;
use flatnet_asgraph::AsId;
use std::collections::BTreeMap;

/// Aggregates an announced-prefix table, preserving resolution for every
/// address. Returns the compacted table.
pub fn aggregate(db: &AnnouncedDb) -> AnnouncedDb {
    // Work on a sorted map of (prefix -> origin).
    let mut table: BTreeMap<Ipv4Prefix, AsId> = db.iter().collect();

    loop {
        let mut changed = false;

        // Covered-prefix elision: drop any prefix whose nearest covering
        // announcement has the same origin.
        let snapshot: Vec<(Ipv4Prefix, AsId)> = table.iter().map(|(&p, &a)| (p, a)).collect();
        for (p, origin) in &snapshot {
            if p.len() == 0 {
                continue;
            }
            // Nearest cover: the longest strictly-shorter prefix covering p.
            let cover = snapshot
                .iter()
                .filter(|(q, _)| q.len() < p.len() && q.covers(p) && table.contains_key(q))
                .max_by_key(|(q, _)| q.len());
            if let Some((_, cover_origin)) = cover {
                if cover_origin == origin {
                    table.remove(p);
                    changed = true;
                }
            }
        }

        // Sibling merge: same-origin halves of a common parent, provided
        // the parent doesn't capture addresses currently resolved by a
        // different-origin announcement *between* parent and halves (no
        // such announcement can exist — any prefix strictly between parent
        // and half would cover exactly one half; if it exists with a
        // different origin the merge is unsafe).
        let snapshot: Vec<(Ipv4Prefix, AsId)> = table.iter().map(|(&p, &a)| (p, a)).collect();
        for (p, origin) in &snapshot {
            if p.len() == 0 || !table.contains_key(p) {
                continue;
            }
            let parent = Ipv4Prefix::new(p.network(), p.len() - 1);
            let (lo, hi) = parent.split().expect("len >= 1 so parent splits");
            let sibling = if *p == lo { hi } else { lo };
            let Some(&sib_origin) = table.get(&sibling) else { continue };
            if sib_origin != *origin {
                continue;
            }
            // Unsafe if any *other* announcement lives strictly inside the
            // parent with a different origin and would now be shadowed
            // differently — but more-specifics always win LPM, so interior
            // announcements are unaffected. Only an announcement exactly
            // equal to the parent with a different origin blocks the merge.
            if let Some(&existing) = table.get(&parent) {
                if existing != *origin {
                    continue;
                }
            }
            table.remove(p);
            table.remove(&sibling);
            table.insert(parent, *origin);
            changed = true;
        }

        if !changed {
            break;
        }
    }

    let mut out = AnnouncedDb::new();
    for (p, a) in table {
        out.announce(p, a);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn db(entries: &[(&str, u32)]) -> AnnouncedDb {
        let mut d = AnnouncedDb::new();
        for (p, a) in entries {
            d.announce(p.parse().unwrap(), AsId(*a));
        }
        d
    }

    #[test]
    fn merges_siblings() {
        let d = db(&[("10.0.0.0/9", 1), ("10.128.0.0/9", 1)]);
        let agg = aggregate(&d);
        assert_eq!(agg.len(), 1);
        assert_eq!(agg.resolve("10.200.0.1".parse().unwrap()), Some(AsId(1)));
        assert!(agg.is_announced("10.0.0.0/8".parse().unwrap()));
    }

    #[test]
    fn merges_recursively() {
        let d = db(&[
            ("10.0.0.0/10", 1),
            ("10.64.0.0/10", 1),
            ("10.128.0.0/9", 1),
        ]);
        let agg = aggregate(&d);
        assert_eq!(agg.len(), 1);
        assert!(agg.is_announced("10.0.0.0/8".parse().unwrap()));
    }

    #[test]
    fn keeps_different_origin_siblings() {
        let d = db(&[("10.0.0.0/9", 1), ("10.128.0.0/9", 2)]);
        let agg = aggregate(&d);
        assert_eq!(agg.len(), 2);
    }

    #[test]
    fn drops_redundant_more_specifics() {
        let d = db(&[("10.0.0.0/8", 1), ("10.1.0.0/16", 1), ("10.2.0.0/16", 2)]);
        let agg = aggregate(&d);
        // 10.1/16 is covered by the same origin's /8; 10.2/16 is not.
        assert_eq!(agg.len(), 2);
        assert!(!agg.is_announced("10.1.0.0/16".parse().unwrap()));
        assert_eq!(agg.resolve("10.2.0.0".parse().unwrap()), Some(AsId(2)));
        assert_eq!(agg.resolve("10.1.0.0".parse().unwrap()), Some(AsId(1)));
    }

    #[test]
    fn hole_punching_is_preserved() {
        // /8 by AS1 with a /16 hole by AS2: nothing may merge or drop.
        let d = db(&[("10.0.0.0/8", 1), ("10.5.0.0/16", 2)]);
        let agg = aggregate(&d);
        assert_eq!(agg.len(), 2);
        assert_eq!(agg.resolve("10.5.1.1".parse().unwrap()), Some(AsId(2)));
        assert_eq!(agg.resolve("10.6.1.1".parse().unwrap()), Some(AsId(1)));
    }

    #[test]
    fn empty_table() {
        assert_eq!(aggregate(&AnnouncedDb::new()).len(), 0);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_db() -> impl Strategy<Value = AnnouncedDb> {
            proptest::collection::vec((any::<u32>(), 4u8..=24, 1u32..5), 1..24).prop_map(
                |entries| {
                    let mut d = AnnouncedDb::new();
                    for (bits, len, origin) in entries {
                        // Cluster prefixes into a small space so overlap is common.
                        let base = 0x0A00_0000 | (bits & 0x00FF_FFFF);
                        d.announce(Ipv4Prefix::new(Ipv4Addr::from(base), len), AsId(origin));
                    }
                    d
                },
            )
        }

        proptest! {
            #[test]
            fn aggregation_preserves_resolution(d in arb_db(), probes in proptest::collection::vec(any::<u32>(), 32)) {
                let agg = aggregate(&d);
                prop_assert!(agg.len() <= d.len());
                // Probe random addresses plus each original prefix's own
                // network/broadcast-side addresses.
                let mut ips: Vec<Ipv4Addr> = probes
                    .iter()
                    .map(|&b| Ipv4Addr::from(0x0A00_0000 | (b & 0x00FF_FFFF)))
                    .collect();
                for (p, _) in d.iter() {
                    ips.push(p.network());
                    ips.push(p.addr(p.size() - 1));
                    ips.push(p.addr(p.size() / 2));
                }
                for ip in ips {
                    prop_assert_eq!(agg.resolve(ip), d.resolve(ip), "ip {}", ip);
                }
            }
        }
    }
}
