//! A PeeringDB-like store: IXPs with peering LANs, per-member LAN addresses
//! (`netixlan` records), and colocation facilities with member lists.
//!
//! The paper uses PeeringDB for two distinct jobs:
//!
//! * **IP→ASN resolution (§4.1/§5)** — a `netixlan` record pins an exact IXP
//!   LAN address to the member AS that configured it, which is authoritative
//!   even when the LAN prefix is unannounced or announced by the IXP's AS.
//!   Preferring PeeringDB over the announced-prefix DB was the final
//!   methodology improvement that brought Microsoft's FDR down to 11%.
//! * **Geolocation and PoP mapping (§4.2, App. D)** — `fac`/`netfac` records
//!   list the facilities (with city coordinates) where an AS is present.

use crate::ipv4::Ipv4Prefix;
use crate::trie::PrefixTrie;
use flatnet_asgraph::AsId;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Identifier of an IXP record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub struct IxpId(pub u32);

/// Identifier of a facility record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub struct FacilityId(pub u32);

/// An Internet eXchange Point with its peering LAN prefixes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Ixp {
    /// Display name, e.g. `"NL-IX"`.
    pub name: String,
    /// The AS number the IXP itself operates (route servers, mgmt), if any.
    pub ixp_asn: Option<AsId>,
    /// Peering LAN prefixes.
    pub lans: Vec<Ipv4Prefix>,
}

/// A colocation facility.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Facility {
    /// Display name.
    pub name: String,
    /// City the facility is in.
    pub city: String,
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
}

/// The in-memory PeeringDB-like dataset.
#[derive(Debug, Clone, Default)]
pub struct PeeringDb {
    ixps: Vec<Ixp>,
    facilities: Vec<Facility>,
    /// Exact LAN address -> member AS (netixlan).
    netixlan: BTreeMap<u32, (AsId, IxpId)>,
    /// LAN prefix -> IXP (for "this hop is inside an IXP LAN" checks).
    lan_trie: PrefixTrie<IxpId>,
    /// AS -> facilities it is present at (netfac).
    netfac: BTreeMap<u32, Vec<FacilityId>>,
}

impl PeeringDb {
    /// Empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an IXP and its peering LANs.
    pub fn add_ixp(&mut self, name: impl Into<String>, ixp_asn: Option<AsId>, lans: Vec<Ipv4Prefix>) -> IxpId {
        let id = IxpId(self.ixps.len() as u32);
        for &lan in &lans {
            self.lan_trie.insert(lan, id);
        }
        self.ixps.push(Ixp { name: name.into(), ixp_asn, lans });
        id
    }

    /// Registers a member's address on an IXP LAN (a `netixlan` record).
    /// Re-registering an address overwrites the member (PeeringDB has one
    /// record per address).
    pub fn add_netixlan(&mut self, asn: AsId, ixp: IxpId, ip: Ipv4Addr) {
        self.netixlan.insert(u32::from(ip), (asn, ixp));
    }

    /// Registers a facility.
    pub fn add_facility(&mut self, name: impl Into<String>, city: impl Into<String>, lat: f64, lon: f64) -> FacilityId {
        let id = FacilityId(self.facilities.len() as u32);
        self.facilities.push(Facility { name: name.into(), city: city.into(), lat, lon });
        id
    }

    /// Registers an AS's presence at a facility (a `netfac` record).
    pub fn add_netfac(&mut self, asn: AsId, fac: FacilityId) {
        let list = self.netfac.entry(asn.0).or_default();
        if !list.contains(&fac) {
            list.push(fac);
        }
    }

    /// Resolves an IP to a member AS via an exact `netixlan` record.
    pub fn resolve(&self, ip: Ipv4Addr) -> Option<AsId> {
        self.netixlan.get(&u32::from(ip)).map(|&(asn, _)| asn)
    }

    /// The IXP whose peering LAN contains `ip`, if any.
    pub fn ixp_lan_of(&self, ip: Ipv4Addr) -> Option<IxpId> {
        self.lan_trie.lookup(ip).map(|(_, &id)| id)
    }

    /// IXP record by id.
    pub fn ixp(&self, id: IxpId) -> &Ixp {
        &self.ixps[id.0 as usize]
    }

    /// Facility record by id.
    pub fn facility(&self, id: FacilityId) -> &Facility {
        &self.facilities[id.0 as usize]
    }

    /// Facilities an AS is registered at (empty slice if none).
    pub fn facilities_of(&self, asn: AsId) -> &[FacilityId] {
        self.netfac.get(&asn.0).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All member ASes with addresses on the given IXP, ascending, deduped.
    pub fn members_of(&self, ixp: IxpId) -> Vec<AsId> {
        let mut members: Vec<AsId> = self
            .netixlan
            .values()
            .filter(|&&(_, i)| i == ixp)
            .map(|&(asn, _)| asn)
            .collect();
        members.sort_unstable();
        members.dedup();
        members
    }

    /// Number of IXPs.
    pub fn ixp_count(&self) -> usize {
        self.ixps.len()
    }

    /// Number of facilities.
    pub fn facility_count(&self) -> usize {
        self.facilities.len()
    }

    /// Number of `netixlan` records.
    pub fn netixlan_count(&self) -> usize {
        self.netixlan.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn sample() -> (PeeringDb, IxpId, FacilityId) {
        let mut db = PeeringDb::new();
        let nlix = db.add_ixp("NL-IX", Some(AsId(34307)), vec!["193.238.116.0/22".parse().unwrap()]);
        db.add_netixlan(AsId(15169), nlix, ip("193.238.116.10"));
        db.add_netixlan(AsId(8075), nlix, ip("193.238.116.20"));
        let fac = db.add_facility("Equinix AM7", "Amsterdam", 52.37, 4.90);
        db.add_netfac(AsId(15169), fac);
        (db, nlix, fac)
    }

    #[test]
    fn netixlan_resolution_is_exact() {
        let (db, _, _) = sample();
        assert_eq!(db.resolve(ip("193.238.116.10")), Some(AsId(15169)));
        assert_eq!(db.resolve(ip("193.238.116.20")), Some(AsId(8075)));
        // Address on the LAN with no record: no member resolution.
        assert_eq!(db.resolve(ip("193.238.116.99")), None);
    }

    #[test]
    fn ixp_lan_containment() {
        let (db, nlix, _) = sample();
        assert_eq!(db.ixp_lan_of(ip("193.238.117.1")), Some(nlix));
        assert_eq!(db.ixp_lan_of(ip("10.0.0.1")), None);
        assert_eq!(db.ixp(nlix).name, "NL-IX");
        assert_eq!(db.ixp(nlix).ixp_asn, Some(AsId(34307)));
    }

    #[test]
    fn members_listing() {
        let (db, nlix, _) = sample();
        assert_eq!(db.members_of(nlix), vec![AsId(8075), AsId(15169)]);
    }

    #[test]
    fn facilities_and_netfac() {
        let (mut db, _, fac) = sample();
        assert_eq!(db.facilities_of(AsId(15169)), &[fac]);
        assert!(db.facilities_of(AsId(1)).is_empty());
        // Duplicate netfac is idempotent.
        db.add_netfac(AsId(15169), fac);
        assert_eq!(db.facilities_of(AsId(15169)).len(), 1);
        let f = db.facility(fac);
        assert_eq!(f.city, "Amsterdam");
    }

    #[test]
    fn netixlan_overwrite_keeps_latest() {
        let (mut db, nlix, _) = sample();
        db.add_netixlan(AsId(64512), nlix, ip("193.238.116.10"));
        assert_eq!(db.resolve(ip("193.238.116.10")), Some(AsId(64512)));
        assert_eq!(db.netixlan_count(), 2);
    }

    #[test]
    fn counts() {
        let (db, _, _) = sample();
        assert_eq!(db.ixp_count(), 1);
        assert_eq!(db.facility_count(), 1);
        assert_eq!(db.netixlan_count(), 2);
    }
}
