//! `flatnet bench propagate` — wall-clock benchmark of the batched
//! propagation engine against the legacy one-shot path.
//!
//! Both passes run the same hierarchy-free reachability workload: for
//! every sampled origin, exclude its providers plus all Tier-1s and
//! Tier-2s, propagate, and count reachable ASes. The legacy pass
//! allocates a fresh exclusion mask and full distance state per origin
//! (what `propagate()` did before the engine existed); the engine pass
//! compiles one [`TopologySnapshot`] and reuses a [`SweepCtx`] so the
//! steady state allocates nothing.
//!
//! Results go to stdout and to a JSON report (schema
//! `flatnet-bench-propagate/v1`) consumed by the CI regression gate.
//! The speedup is a within-run ratio (legacy total / engine total on
//! the same machine), so it is comparable across hosts; the default is
//! single-threaded for the same reason — `--threads N` additionally
//! measures sweep parallelism.

use flatnet_asgraph::{AsGraph, NodeId, Tiers};
use flatnet_bgpsim::{propagate_legacy, PropagationConfig, Simulation, SweepCtx, TopologySnapshot};
use flatnet_netgen::{generate, NetGenConfig};
use std::time::Instant;

/// One timing pass's summary statistics.
struct PassStats {
    total_ms: f64,
    p50_us: u64,
    p90_us: u64,
    total_reach: u64,
}

fn percentile(sorted_us: &[u64], pct: usize) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let i = (sorted_us.len() * pct / 100).min(sorted_us.len() - 1);
    sorted_us[i]
}

fn stats(mut per_origin_us: Vec<u64>, total_ms: f64, total_reach: u64) -> PassStats {
    per_origin_us.sort_unstable();
    PassStats {
        total_ms,
        p50_us: percentile(&per_origin_us, 50),
        p90_us: percentile(&per_origin_us, 90),
        total_reach,
    }
}

/// The hierarchy-free exclusion set: the origin's providers, every
/// Tier-1 and Tier-2, with the origin itself always allowed.
fn fill_mask(g: &AsGraph, tiers: &Tiers, origin: NodeId, mask: &mut [bool]) {
    for &p in g.providers(origin) {
        mask[p.idx()] = true;
    }
    for &n in tiers.tier1() {
        mask[n.idx()] = true;
    }
    for &n in tiers.tier2() {
        mask[n.idx()] = true;
    }
    mask[origin.idx()] = false;
}

/// Peak resident set size in bytes (`VmHWM` from `/proc/self/status`),
/// or 0 where procfs is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn flag_value<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    let v = value.ok_or_else(|| format!("{flag} requires a value"))?;
    v.parse().map_err(|e| format!("bad value {v:?} for {flag}: {e}"))
}

/// Runs the propagation benchmark with CLI-style `args` (the `bench
/// propagate` subcommand). Writes the JSON report and prints a summary.
pub fn run(args: &[String]) -> Result<(), String> {
    let mut ases = 4000usize;
    let mut seed = 2020u64;
    let mut n_origins = 600usize;
    let mut threads = 1usize;
    let mut out = String::from("BENCH_propagate.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ases" => ases = flag_value("--ases", it.next())?,
            "--seed" => seed = flag_value("--seed", it.next())?,
            "--origins" => n_origins = flag_value("--origins", it.next())?,
            "--threads" => threads = flag_value("--threads", it.next())?,
            "--out" => out = it.next().ok_or("--out requires a file path")?.clone(),
            "--help" | "-h" => {
                println!("usage: flatnet bench propagate [--ases N] [--seed S] [--origins K]");
                println!("                               [--threads N] [--out PATH]");
                println!("--ases N:    topology size (default 4000)");
                println!("--seed S:    generator seed (default 2020)");
                println!("--origins K: origins to sweep, 0 = every AS (default 600)");
                println!("--threads N: engine sweep workers (default 1, for a pure");
                println!("             engine-vs-legacy comparison; 0 = all cores)");
                println!("--out PATH:  JSON report path (default BENCH_propagate.json)");
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }

    let net = generate(&NetGenConfig::paper_2020(ases, seed));
    let g = &net.truth;
    let tiers = net.tiers_for(g);
    let n = g.len();

    // Evenly-spaced origin sample, deterministic for a given (ases, seed).
    let origins: Vec<NodeId> = if n_origins == 0 || n_origins >= n {
        g.nodes().collect()
    } else {
        let step = n / n_origins;
        g.nodes().step_by(step.max(1)).take(n_origins).collect()
    };
    println!(
        "# flatnet bench propagate — {n} ASes (seed {seed}), {} origins, {threads} thread(s)",
        origins.len()
    );

    // ---- Legacy pass: fresh mask + full propagation state per origin. ----
    let t0 = Instant::now();
    let mut legacy_us = Vec::with_capacity(origins.len());
    let mut legacy_reach = 0u64;
    for &o in &origins {
        let t = Instant::now();
        let mut mask = vec![false; n];
        fill_mask(g, &tiers, o, &mut mask);
        let cfg = PropagationConfig::default().with_excluded(mask);
        legacy_reach += propagate_legacy(g, o, &cfg).reachable_count() as u64;
        legacy_us.push(t.elapsed().as_micros() as u64);
    }
    let legacy = stats(legacy_us, t0.elapsed().as_secs_f64() * 1e3, legacy_reach);

    // ---- Engine pass: one snapshot, reused workspaces, mask refills. ----
    let tc = Instant::now();
    let snap = TopologySnapshot::compile(g);
    let compile_ms = tc.elapsed().as_secs_f64() * 1e3;
    let sim = Simulation::over(&snap).threads(threads);
    let t0 = Instant::now();
    let timed: Vec<(u64, u64)> = sim.run_sweep_map(&origins, |ctx: &mut SweepCtx<'_>, o| {
        let t = Instant::now();
        let mask = ctx.config_mut().excluded_mask_mut(n);
        mask.fill(false);
        fill_mask(g, &tiers, o, mask);
        let reach = ctx.run(o).reachable_count() as u64;
        (t.elapsed().as_micros() as u64, reach)
    });
    let engine_total_ms = t0.elapsed().as_secs_f64() * 1e3;
    let engine_reach: u64 = timed.iter().map(|&(_, r)| r).sum();
    let engine = stats(timed.iter().map(|&(us, _)| us).collect(), engine_total_ms, engine_reach);

    if legacy.total_reach != engine.total_reach {
        return Err(format!(
            "engine disagrees with legacy: total reach {} vs {}",
            engine.total_reach, legacy.total_reach
        ));
    }

    let speedup = legacy.total_ms / engine.total_ms.max(1e-9);
    let rss = peak_rss_bytes();
    println!("legacy : {:9.1} ms total, p50 {:6} us, p90 {:6} us", legacy.total_ms, legacy.p50_us, legacy.p90_us);
    println!(
        "engine : {:9.1} ms total, p50 {:6} us, p90 {:6} us (+ {:.1} ms snapshot compile)",
        engine.total_ms, engine.p50_us, engine.p90_us, compile_ms
    );
    println!("speedup: {speedup:.2}x   peak RSS: {:.1} MiB", rss as f64 / (1 << 20) as f64);

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"flatnet-bench-propagate/v1\",\n",
            "  \"ases\": {},\n",
            "  \"seed\": {},\n",
            "  \"origins\": {},\n",
            "  \"threads\": {},\n",
            "  \"legacy\": {{ \"total_ms\": {:.3}, \"p50_us\": {}, \"p90_us\": {} }},\n",
            "  \"engine\": {{ \"total_ms\": {:.3}, \"p50_us\": {}, \"p90_us\": {}, \"compile_ms\": {:.3} }},\n",
            "  \"total_reach\": {},\n",
            "  \"speedup\": {:.4},\n",
            "  \"peak_rss_bytes\": {}\n",
            "}}\n"
        ),
        n,
        seed,
        origins.len(),
        threads,
        legacy.total_ms,
        legacy.p50_us,
        legacy.p90_us,
        engine.total_ms,
        engine.p50_us,
        engine.p90_us,
        compile_ms,
        engine.total_reach,
        speedup,
        rss,
    );
    std::fs::write(&out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("report written to {out}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_rss() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[1, 2, 3, 4], 50), 3);
        assert_eq!(percentile(&[1, 2, 3, 4], 90), 4);
        // On Linux this reads VmHWM; elsewhere it degrades to 0.
        let _ = peak_rss_bytes();
    }

    #[test]
    fn tiny_bench_writes_a_schema_tagged_report() {
        let dir = std::env::temp_dir().join("flatnet_propbench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("bench.json");
        let args: Vec<String> = [
            "--ases", "200", "--origins", "20", "--seed", "7", "--out",
            out.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
        let body = std::fs::read_to_string(&out).unwrap();
        assert!(body.contains("\"schema\": \"flatnet-bench-propagate/v1\""));
        assert!(body.contains("\"speedup\""));
        assert!(body.contains("\"total_reach\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let args = vec!["--bogus".to_string()];
        assert!(run(&args).is_err());
        let args = vec!["--ases".to_string()];
        assert!(run(&args).is_err());
    }
}
