//! `flatnet bench propagate` — wall-clock benchmark of the batched
//! propagation engine against the legacy one-shot path.
//!
//! Both passes run the same hierarchy-free reachability workload: for
//! every sampled origin, exclude its providers plus all Tier-1s and
//! Tier-2s, propagate, and count reachable ASes. The legacy pass
//! allocates a fresh exclusion mask and full distance state per origin
//! (what `propagate()` did before the engine existed); the engine pass
//! compiles one [`TopologySnapshot`] and reuses a [`SweepCtx`] so the
//! steady state allocates nothing.
//!
//! A third pass runs the same workload through the bit-parallel
//! multi-origin kernel pinned at the narrowest lane width (64 origins
//! per block, `Simulation::run_sweep_reach_counts_with`). A fourth pair
//! (`kernel_dense` / `kernel_wide`) times the serve batch and
//! cache-warm workload — an unrestricted full-reach sweep of the same
//! origins, where lanes share most node visits — first in 64-lane
//! blocks, then at the wide lane width (256 origins per block on AVX2
//! hardware, or whatever `--lane-width` selects); the
//! `kernel_wide_vs_kernel` ratio compares those two legs and is the CI
//! lane-widening gate. A final pair of passes re-times the engine and
//! 64-lane kernel sweeps multithreaded (`--mt-threads`, default all
//! cores).
//!
//! Results go to stdout and to a JSON report (schema
//! `flatnet-bench-propagate/v1`) consumed by the CI regression gate.
//! The report records the resolved lane widths, per-pass block lane
//! occupancy, and the detected CPU SIMD features, so baselines measured
//! on different runners are comparable.
//! Every speedup is a within-run ratio (totals measured on the same
//! machine in the same process), so it is comparable across hosts; the
//! headline passes default to single-threaded for the same reason —
//! `--threads N` changes their sweep parallelism. Each pass runs
//! `--reps` times and keeps its fastest repetition, so the reported
//! totals describe warm steady state rather than allocator warm-up.

use flatnet_asgraph::{AsGraph, NodeId, Tiers};
use flatnet_bgpsim::{
    cpu_features, propagate_legacy, LaneExcluder, LaneWidth, PropagationConfig, Simulation,
    SweepCtx, TopologySnapshot, LANES,
};
use flatnet_netgen::{generate, NetGenConfig};
use std::time::Instant;

/// One timing pass's summary statistics.
struct PassStats {
    total_ms: f64,
    p50_us: u64,
    p90_us: u64,
    total_reach: u64,
}

fn percentile(sorted_us: &[u64], pct: usize) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let i = (sorted_us.len() * pct / 100).min(sorted_us.len() - 1);
    sorted_us[i]
}

fn stats(mut per_origin_us: Vec<u64>, total_ms: f64, total_reach: u64) -> PassStats {
    per_origin_us.sort_unstable();
    PassStats {
        total_ms,
        p50_us: percentile(&per_origin_us, 50),
        p90_us: percentile(&per_origin_us, 90),
        total_reach,
    }
}

/// The hierarchy-free exclusion set: the origin's providers, every
/// Tier-1 and Tier-2, with the origin itself always allowed.
fn fill_mask(g: &AsGraph, tiers: &Tiers, origin: NodeId, mask: &mut [bool]) {
    for &p in g.providers(origin) {
        mask[p.idx()] = true;
    }
    for &n in tiers.tier1() {
        mask[n.idx()] = true;
    }
    for &n in tiers.tier2() {
        mask[n.idx()] = true;
    }
    mask[origin.idx()] = false;
}

/// The origin-dependent part of [`fill_mask`] for one kernel lane: the
/// tier exclusions are origin-independent, so they ride in the
/// simulation's shared mask (one broadcast per block) instead of being
/// refilled into all 64 lanes; see [`tier_mask`].
fn fill_lane(g: &AsGraph, origin: NodeId, ex: &mut LaneExcluder<'_>) {
    for &p in g.providers(origin) {
        ex.exclude(p);
    }
    ex.allow(origin);
}

/// The shared (origin-independent) half of [`fill_mask`]: every Tier-1
/// and Tier-2 excluded.
fn tier_mask(tiers: &Tiers, n: usize) -> Vec<bool> {
    let mut mask = vec![false; n];
    for &t in tiers.tier1() {
        mask[t.idx()] = true;
    }
    for &t in tiers.tier2() {
        mask[t.idx()] = true;
    }
    mask
}

/// Peak resident set size in bytes (`VmHWM` from `/proc/self/status`),
/// or 0 where procfs is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn flag_value<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    let v = value.ok_or_else(|| format!("{flag} requires a value"))?;
    v.parse().map_err(|e| format!("bad value {v:?} for {flag}: {e}"))
}

/// Runs the propagation benchmark with CLI-style `args` (the `bench
/// propagate` subcommand). Writes the JSON report and prints a summary.
pub fn run(args: &[String]) -> Result<(), String> {
    let mut ases = 4000usize;
    let mut seed = 2020u64;
    let mut n_origins = 600usize;
    let mut threads = 1usize;
    let mut mt_threads = 0usize;
    let mut reps = 7usize;
    let mut out = String::from("BENCH_propagate.json");
    let mut lane_width_flag = String::from("auto");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ases" => ases = flag_value("--ases", it.next())?,
            "--seed" => seed = flag_value("--seed", it.next())?,
            "--origins" => n_origins = flag_value("--origins", it.next())?,
            "--threads" => threads = flag_value("--threads", it.next())?,
            "--mt-threads" => mt_threads = flag_value("--mt-threads", it.next())?,
            "--reps" => reps = flag_value("--reps", it.next())?,
            "--lane-width" => {
                lane_width_flag = it.next().ok_or("--lane-width requires a value")?.clone()
            }
            "--out" => out = it.next().ok_or("--out requires a file path")?.clone(),
            "--help" | "-h" => {
                println!("usage: flatnet bench propagate [--ases N] [--seed S] [--origins K]");
                println!("                               [--threads N] [--mt-threads N] [--reps R]");
                println!("                               [--lane-width W] [--out PATH]");
                println!("--ases N:       topology size (default 4000)");
                println!("--seed S:       generator seed (default 2020)");
                println!("--origins K:    origins to sweep, 0 = every AS (default 600)");
                println!("--threads N:    sweep workers for the headline passes (default 1,");
                println!("                for pure within-run ratios; 0 = all cores)");
                println!("--mt-threads N: workers for the extra multithreaded passes");
                println!("                (default 0 = all cores)");
                println!("--reps R:       repetitions per pass, fastest wins (default 7;");
                println!("                the first rep warms allocators and page cache)");
                println!("--lane-width W: kernel_wide pass lane width: auto, 64, 128, or 256");
                println!("                (default auto = widest the CPU runs well)");
                println!("--out PATH:     JSON report path (default BENCH_propagate.json)");
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }
    let reps = reps.max(1);
    let lane_width = LaneWidth::parse(&lane_width_flag)?;

    let net = generate(&NetGenConfig::paper_2020(ases, seed));
    let g = &net.truth;
    let tiers = net.tiers_for(g);
    let n = g.len();

    // Evenly-spaced origin sample, deterministic for a given (ases, seed).
    let origins: Vec<NodeId> = if n_origins == 0 || n_origins >= n {
        g.nodes().collect()
    } else {
        let step = n / n_origins;
        g.nodes().step_by(step.max(1)).take(n_origins).collect()
    };
    println!(
        "# flatnet bench propagate — {n} ASes (seed {seed}), {} origins, {threads} thread(s)",
        origins.len()
    );

    // Every pass runs `reps` times and keeps its fastest repetition: the
    // first rep pays allocator warm-up and first-touch page faults, and
    // min-of-reps filters scheduler noise out of the within-run ratios.
    let best = |best: &mut Option<PassStats>, s: PassStats| {
        if best.as_ref().is_none_or(|b| s.total_ms < b.total_ms) {
            *best = Some(s);
        }
    };

    // ---- Legacy pass: fresh mask + full propagation state per origin. ----
    let mut legacy_best: Option<PassStats> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let mut legacy_us = Vec::with_capacity(origins.len());
        let mut legacy_reach = 0u64;
        for &o in &origins {
            let t = Instant::now();
            let mut mask = vec![false; n];
            fill_mask(g, &tiers, o, &mut mask);
            let cfg = PropagationConfig::default().with_excluded(mask);
            legacy_reach += propagate_legacy(g, o, &cfg).reachable_count() as u64;
            legacy_us.push(t.elapsed().as_micros() as u64);
        }
        best(&mut legacy_best, stats(legacy_us, t0.elapsed().as_secs_f64() * 1e3, legacy_reach));
    }
    let legacy = legacy_best.expect("reps >= 1");

    // ---- Engine pass: one snapshot, reused workspaces, mask refills. ----
    let tc = Instant::now();
    let snap = TopologySnapshot::compile(g);
    let compile_ms = tc.elapsed().as_secs_f64() * 1e3;
    let sim = Simulation::over(&snap).threads(threads);
    let mut engine_best: Option<PassStats> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let timed: Vec<(u64, u64)> = sim.run_sweep_map(&origins, |ctx: &mut SweepCtx<'_>, o| {
            let t = Instant::now();
            let mask = ctx.config_mut().excluded_mask_mut(n);
            mask.fill(false);
            fill_mask(g, &tiers, o, mask);
            let reach = ctx.run(o).reachable_count() as u64;
            (t.elapsed().as_micros() as u64, reach)
        });
        let total_ms = t0.elapsed().as_secs_f64() * 1e3;
        let reach: u64 = timed.iter().map(|&(_, r)| r).sum();
        best(&mut engine_best, stats(timed.iter().map(|&(us, _)| us).collect(), total_ms, reach));
    }
    let engine = engine_best.expect("reps >= 1");

    if legacy.total_reach != engine.total_reach {
        return Err(format!(
            "engine disagrees with legacy: total reach {} vs {}",
            engine.total_reach, legacy.total_reach
        ));
    }

    // ---- Kernel pass, pinned at the narrowest width (64 origins per
    // block) as the lane-widening baseline; tiers broadcast via the
    // shared mask, providers + origin-allow per lane. ----
    let ksim = Simulation::over(&snap)
        .threads(threads)
        .excluded(tier_mask(&tiers, n))
        .lane_width(LaneWidth::W64);
    let mut kernel_total_ms = f64::INFINITY;
    let mut kernel_reach = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let counts = ksim.run_sweep_reach_counts_with(&origins, |o, ex| fill_lane(g, o, ex));
        let total_ms = t0.elapsed().as_secs_f64() * 1e3;
        kernel_reach = counts.iter().map(|&c| c as u64).sum();
        kernel_total_ms = kernel_total_ms.min(total_ms);
    }
    let kernel_blocks = origins.len().div_ceil(LANES).max(1);
    // Mean origins actually occupying each block (the report used to
    // hardcode 64, wrong for every partial tail block).
    let kernel_occupancy = origins.len() as f64 / kernel_blocks as f64;
    if kernel_reach != legacy.total_reach {
        return Err(format!(
            "kernel disagrees with legacy: total reach {kernel_reach} vs {}",
            legacy.total_reach
        ));
    }

    // ---- Wide-kernel pair: the serve batch / cache-warm workload — an
    // unrestricted full-reach sweep of the same origins, where every
    // lane's announcement floods most of the graph. This is the workload
    // lane *width* exists for: the per-node traversal is shared by every
    // lane that reaches the node, so 256-lane blocks amortize the graph
    // walk over 4x the origins while AVX2 keeps each mask op one vector
    // instruction. (The hierarchy-free pass above is the opposite shape:
    // tier exclusions shrink each reach set to a few dozen nearly
    // disjoint nodes, so there is no shared traversal to amortize and
    // the bench pins that pass to 64 lanes.) The
    // 64-lane leg of the pair runs the *same* dense workload, so the
    // ratio isolates lane widening alone. ----
    let wide_lanes = LANES * lane_width.words_for(origins.len());
    let dsim = Simulation::over(&snap).threads(threads).lane_width(LaneWidth::W64);
    let mut kernel_dense_ms = f64::INFINITY;
    let mut dense_reach = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let counts = dsim.run_sweep_reach_counts(&origins);
        let total_ms = t0.elapsed().as_secs_f64() * 1e3;
        dense_reach = counts.iter().map(|&c| c as u64).sum();
        kernel_dense_ms = kernel_dense_ms.min(total_ms);
    }
    let wsim = Simulation::over(&snap).threads(threads).lane_width(lane_width);
    let mut kernel_wide_ms = f64::INFINITY;
    let mut kernel_wide_reach = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let counts = wsim.run_sweep_reach_counts(&origins);
        let total_ms = t0.elapsed().as_secs_f64() * 1e3;
        kernel_wide_reach = counts.iter().map(|&c| c as u64).sum();
        kernel_wide_ms = kernel_wide_ms.min(total_ms);
    }
    let kernel_wide_blocks = origins.len().div_ceil(wide_lanes).max(1);
    let kernel_wide_occupancy = origins.len() as f64 / kernel_wide_blocks as f64;
    if kernel_wide_reach != dense_reach {
        return Err(format!(
            "wide kernel disagrees with 64-lane kernel on the dense sweep: \
             total reach {kernel_wide_reach} vs {dense_reach}"
        ));
    }

    // ---- Multithreaded variants of both sweeps. ----
    let mt_sim = Simulation::over(&snap).threads(mt_threads);
    let mut engine_mt_ms = f64::INFINITY;
    let mut mt_reach = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let mt_timed: Vec<u64> = mt_sim.run_sweep_map(&origins, |ctx: &mut SweepCtx<'_>, o| {
            let mask = ctx.config_mut().excluded_mask_mut(n);
            mask.fill(false);
            fill_mask(g, &tiers, o, mask);
            ctx.run(o).reachable_count() as u64
        });
        engine_mt_ms = engine_mt_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        mt_reach = mt_timed.iter().sum();
    }
    let kmt_sim = Simulation::over(&snap)
        .threads(mt_threads)
        .excluded(tier_mask(&tiers, n))
        .lane_width(LaneWidth::W64);
    let mut kernel_mt_ms = f64::INFINITY;
    let mut kernel_mt_reach = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let mt_counts = kmt_sim.run_sweep_reach_counts_with(&origins, |o, ex| fill_lane(g, o, ex));
        kernel_mt_ms = kernel_mt_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        kernel_mt_reach = mt_counts.iter().map(|&c| c as u64).sum();
    }
    if mt_reach != legacy.total_reach || kernel_mt_reach != legacy.total_reach {
        return Err(format!(
            "multithreaded passes disagree with legacy: engine {mt_reach}, \
             kernel {kernel_mt_reach}, want {}",
            legacy.total_reach
        ));
    }

    let speedup = legacy.total_ms / engine.total_ms.max(1e-9);
    let speedup_kernel = legacy.total_ms / kernel_total_ms.max(1e-9);
    let kernel_vs_engine = engine.total_ms / kernel_total_ms.max(1e-9);
    // Within-pair ratio: both legs run the dense full-reach sweep, so
    // this isolates what lane widening alone buys (the CI gate).
    let kernel_wide_vs_kernel = kernel_dense_ms / kernel_wide_ms.max(1e-9);
    let features = cpu_features();
    let rss = peak_rss_bytes();
    println!("legacy : {:9.1} ms total, p50 {:6} us, p90 {:6} us", legacy.total_ms, legacy.p50_us, legacy.p90_us);
    println!(
        "engine : {:9.1} ms total, p50 {:6} us, p90 {:6} us (+ {:.1} ms snapshot compile)",
        engine.total_ms, engine.p50_us, engine.p90_us, compile_ms
    );
    println!(
        "kernel : {kernel_total_ms:9.1} ms total, {kernel_blocks} blocks of {LANES} lanes \
         (mean occupancy {kernel_occupancy:.1}, {kernel_vs_engine:.2}x over engine)"
    );
    println!(
        "dense64: {kernel_dense_ms:9.1} ms total (full-reach sweep, 64-lane blocks — the \
         serve batch/warm workload)"
    );
    println!(
        "wide   : {kernel_wide_ms:9.1} ms total, {kernel_wide_blocks} blocks of {wide_lanes} \
         lanes (mean occupancy {kernel_wide_occupancy:.1}, {kernel_wide_vs_kernel:.2}x over \
         64-lane kernel on the same sweep)"
    );
    println!(
        "mt     : engine {engine_mt_ms:9.1} ms, kernel {kernel_mt_ms:9.1} ms \
         (threads: {mt_threads}, 0 = all cores)"
    );
    println!(
        "speedup: {speedup:.2}x   cpu: [{}]   peak RSS: {:.1} MiB",
        features.join(" "),
        rss as f64 / (1 << 20) as f64
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"flatnet-bench-propagate/v1\",\n",
            "  \"ases\": {},\n",
            "  \"seed\": {},\n",
            "  \"origins\": {},\n",
            "  \"threads\": {},\n",
            "  \"mt_threads\": {},\n",
            "  \"reps\": {},\n",
            "  \"lane_width\": \"{}\",\n",
            "  \"cpu_features\": [{}],\n",
            "  \"legacy\": {{ \"total_ms\": {:.3}, \"p50_us\": {}, \"p90_us\": {} }},\n",
            "  \"engine\": {{ \"total_ms\": {:.3}, \"p50_us\": {}, \"p90_us\": {}, \"compile_ms\": {:.3} }},\n",
            "  \"kernel\": {{ \"total_ms\": {:.3}, \"blocks\": {}, \"lanes\": {}, \"occupancy\": {:.2} }},\n",
            "  \"kernel_dense\": {{ \"total_ms\": {:.3}, \"total_reach\": {} }},\n",
            "  \"kernel_wide\": {{ \"total_ms\": {:.3}, \"blocks\": {}, \"lanes\": {}, \"occupancy\": {:.2} }},\n",
            "  \"engine_mt\": {{ \"total_ms\": {:.3} }},\n",
            "  \"kernel_mt\": {{ \"total_ms\": {:.3} }},\n",
            "  \"total_reach\": {},\n",
            "  \"speedup\": {:.4},\n",
            "  \"speedup_kernel\": {:.4},\n",
            "  \"kernel_vs_engine\": {:.4},\n",
            "  \"kernel_wide_vs_kernel\": {:.4},\n",
            "  \"peak_rss_bytes\": {}\n",
            "}}\n"
        ),
        n,
        seed,
        origins.len(),
        threads,
        mt_threads,
        reps,
        lane_width_flag,
        features.iter().map(|f| format!("\"{f}\"")).collect::<Vec<_>>().join(", "),
        legacy.total_ms,
        legacy.p50_us,
        legacy.p90_us,
        engine.total_ms,
        engine.p50_us,
        engine.p90_us,
        compile_ms,
        kernel_total_ms,
        kernel_blocks,
        LANES,
        kernel_occupancy,
        kernel_dense_ms,
        dense_reach,
        kernel_wide_ms,
        kernel_wide_blocks,
        wide_lanes,
        kernel_wide_occupancy,
        engine_mt_ms,
        kernel_mt_ms,
        engine.total_reach,
        speedup,
        speedup_kernel,
        kernel_vs_engine,
        kernel_wide_vs_kernel,
        rss,
    );
    std::fs::write(&out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("report written to {out}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_rss() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[1, 2, 3, 4], 50), 3);
        assert_eq!(percentile(&[1, 2, 3, 4], 90), 4);
        // On Linux this reads VmHWM; elsewhere it degrades to 0.
        let _ = peak_rss_bytes();
    }

    #[test]
    fn tiny_bench_writes_a_schema_tagged_report() {
        let dir = std::env::temp_dir().join("flatnet_propbench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("bench.json");
        let args: Vec<String> = [
            "--ases", "200", "--origins", "20", "--seed", "7", "--out",
            out.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
        let body = std::fs::read_to_string(&out).unwrap();
        assert!(body.contains("\"schema\": \"flatnet-bench-propagate/v1\""));
        assert!(body.contains("\"speedup\""));
        assert!(body.contains("\"total_reach\""));
        assert!(body.contains("\"kernel\""));
        assert!(body.contains("\"speedup_kernel\""));
        assert!(body.contains("\"kernel_vs_engine\""));
        assert!(body.contains("\"kernel_mt\""));
        assert!(body.contains("\"reps\""));
        assert!(body.contains("\"kernel_wide\""));
        assert!(body.contains("\"kernel_wide_vs_kernel\""));
        assert!(body.contains("\"lane_width\": \"auto\""));
        assert!(body.contains("\"cpu_features\""));
        assert!(body.contains("\"occupancy\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let args = vec!["--bogus".to_string()];
        assert!(run(&args).is_err());
        let args = vec!["--ases".to_string()];
        assert!(run(&args).is_err());
    }
}
