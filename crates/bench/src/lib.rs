#![warn(missing_docs)]

//! Shared scaffolding for the `repro` harness and the Criterion benches.
//!
//! The [`Lab`] caches the expensive shared artifacts — the 2020 and 2015
//! synthetic Internets, the measured (augmented) topology, tier sets, and
//! whole-Internet hierarchy-free reachability — so each experiment only
//! pays for what it uniquely needs.

use flatnet_asgraph::{AsGraph, AsId, Tiers};
use flatnet_core::pipeline::{measure_checked, HealthPolicy, Measured, PreflightOptions};
use flatnet_core::reachability::hierarchy_free_all_t;
use flatnet_netgen::{generate, NetGenConfig, SyntheticInternet};
use flatnet_tracesim::{CampaignOptions, Methodology};
use std::cell::OnceCell;

pub mod propbench;
pub mod repro;
pub mod restartbench;
pub mod servebench;

/// Experiment scale knobs (see `repro --help`).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Number of ASes in the 2020 synthetic Internet.
    pub n_ases: usize,
    /// Master seed.
    pub seed: u64,
    /// Leak simulations per configuration.
    pub n_leakers: usize,
    /// Random origin/leaker pairs for the average-resilience baseline.
    pub n_avg: usize,
    /// Worker threads for parallel sweeps (`0` = available parallelism).
    /// Results are identical for any count; only timings change.
    pub threads: usize,
}

impl Scale {
    /// The default repro scale (a few minutes on a laptop).
    pub fn default_scale() -> Self {
        Scale { n_ases: 4000, seed: 2020, n_leakers: 200, n_avg: 60, threads: 0 }
    }

    /// A fast scale for smoke runs and benches.
    pub fn fast() -> Self {
        Scale { n_ases: 800, seed: 2020, n_leakers: 60, n_avg: 25, threads: 0 }
    }
}

/// Lazily-built shared experiment state.
pub struct Lab {
    /// The scale everything is built at.
    pub scale: Scale,
    net2020: OnceCell<SyntheticInternet>,
    net2015: OnceCell<SyntheticInternet>,
    measured2020: OnceCell<Measured>,
    measured2015: OnceCell<Measured>,
    hfr2020: OnceCell<Vec<u32>>,
    hfr2015: OnceCell<Vec<u32>>,
}

impl Lab {
    /// A lab at the given scale. Nothing is computed until asked for.
    pub fn new(scale: Scale) -> Self {
        Lab {
            scale,
            net2020: OnceCell::new(),
            net2015: OnceCell::new(),
            measured2020: OnceCell::new(),
            measured2015: OnceCell::new(),
            hfr2020: OnceCell::new(),
            hfr2015: OnceCell::new(),
        }
    }

    /// The September-2020-like synthetic Internet.
    pub fn net2020(&self) -> &SyntheticInternet {
        self.net2020
            .get_or_init(|| generate(&NetGenConfig::paper_2020(self.scale.n_ases, self.scale.seed)))
    }

    /// The September-2015-like synthetic Internet.
    pub fn net2015(&self) -> &SyntheticInternet {
        self.net2015
            .get_or_init(|| generate(&NetGenConfig::paper_2015(self.scale.n_ases, self.scale.seed)))
    }

    fn campaign_opts() -> CampaignOptions {
        CampaignOptions { dest_sample: 1.0, ..Default::default() }
    }

    /// Runs the pipeline behind a Warn-policy preflight health check:
    /// problems are logged, never fatal — the generator's topologies are
    /// healthy by construction, and an experiment run should not die on a
    /// degraded-but-usable graph.
    fn measure_warned(net: &SyntheticInternet) -> Measured {
        let pre = PreflightOptions { policy: HealthPolicy::Warn, ..Default::default() };
        let (m, report) =
            measure_checked(net, &Self::campaign_opts(), &Methodology::final_methodology(), &pre)
                .expect("Warn policy never refuses to run");
        if let Some(r) = report {
            if !r.is_usable() {
                flatnet_obs::warn!("topology preflight found critical problems:\n{}", r.render());
            }
        }
        m
    }

    /// The 2020 measurement pipeline output (campaign + inference +
    /// augmented topology).
    pub fn measured2020(&self) -> &Measured {
        self.measured2020.get_or_init(|| Self::measure_warned(self.net2020()))
    }

    /// The 2015 pipeline output (the paper reused a 2015 traceroute
    /// dataset with its own noisier mapping; we run the same pipeline on
    /// the 2015 topology).
    pub fn measured2015(&self) -> &Measured {
        self.measured2015.get_or_init(|| Self::measure_warned(self.net2015()))
    }

    /// The augmented 2020 graph (what §6-§8 run on).
    pub fn graph2020(&self) -> &AsGraph {
        &self.measured2020().augmented
    }

    /// The augmented 2015 graph.
    pub fn graph2015(&self) -> &AsGraph {
        &self.measured2015().augmented
    }

    /// Tier sets bound to the augmented 2020 graph.
    pub fn tiers2020(&self) -> Tiers {
        self.net2020().tiers_for(self.graph2020())
    }

    /// Tier sets bound to the augmented 2015 graph.
    pub fn tiers2015(&self) -> Tiers {
        self.net2015().tiers_for(self.graph2015())
    }

    /// Hierarchy-free reachability of every AS, 2020 augmented graph.
    pub fn hfr2020(&self) -> &[u32] {
        self.hfr2020
            .get_or_init(|| hierarchy_free_all_t(self.graph2020(), &self.tiers2020(), self.scale.threads))
    }

    /// Hierarchy-free reachability of every AS, 2015 augmented graph.
    pub fn hfr2015(&self) -> &[u32] {
        self.hfr2015
            .get_or_init(|| hierarchy_free_all_t(self.graph2015(), &self.tiers2015(), self.scale.threads))
    }

    /// Display name helper against the 2020 Internet.
    pub fn name(&self, asn: AsId) -> String {
        self.net2020().name_of(asn)
    }

    /// Per-node user weights on the augmented 2020 graph (nodes added by
    /// augmentation — IXP ASes — get weight 0).
    pub fn user_weights_2020(&self) -> Vec<f64> {
        let net = self.net2020();
        let g = self.graph2020();
        g.nodes()
            .map(|n| {
                net.truth
                    .index_of(g.asn(n))
                    .map(|tn| net.meta[tn.idx()].users as f64)
                    .unwrap_or(0.0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_builds_lazily_and_consistently() {
        let lab = Lab::new(Scale { n_ases: 300, seed: 1, n_leakers: 5, n_avg: 3, threads: 0 });
        assert_eq!(lab.net2020().truth.len(), 300);
        assert!(lab.net2015().truth.len() < 300);
        assert!(lab.graph2020().edge_count() > 0);
        assert_eq!(lab.hfr2020().len(), lab.graph2020().len());
        assert_eq!(lab.name(AsId(15169)), "Google");
        assert_eq!(lab.user_weights_2020().len(), lab.graph2020().len());
    }
}
