//! Thin entry point for the repro harness; all the logic lives in
//! [`flatnet_bench::repro`] so `flatnet repro` can share it.

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match flatnet_bench::repro::run(&args) {
        Ok(0) => std::process::ExitCode::SUCCESS,
        Ok(failed) => {
            flatnet_obs::error!("{failed} experiment(s) failed");
            std::process::ExitCode::FAILURE
        }
        Err(msg) => {
            flatnet_obs::error!("{msg}");
            flatnet_obs::error!("run with --help for usage");
            std::process::ExitCode::FAILURE
        }
    }
}
