//! `flatnet bench restart` — cold start vs warm start from the
//! snapshot store.
//!
//! The store's whole point is that a daemon restart should cost a file
//! read plus checksum verification instead of topology generation (or
//! ingestion) plus CSR compilation. This pass measures both paths on
//! the same synthetic topology — cold = generate + compile, warm =
//! `flatnet_store::load` of the image written by the cold pass — and
//! verifies the warm snapshot is bit-identical before reporting any
//! numbers, so the speedup claim is only ever made about a correct
//! restart.
//!
//! The report (schema `flatnet-bench-restart/v1`) feeds the CI smoke
//! step: the warm path must be faster than the cold path and the two
//! CSRs must match.

use flatnet_bgpsim::TopologySnapshot;
use flatnet_netgen::{generate, NetGenConfig};
use flatnet_store::StoredSnapshot;
use std::time::Instant;

fn flag_value<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    let v = value.ok_or_else(|| format!("{flag} requires a value"))?;
    v.parse().map_err(|e| format!("bad value {v:?} for {flag}: {e}"))
}

fn median_ms(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Runs the restart benchmark with CLI-style `args` (the `bench
/// restart` subcommand). Writes the JSON report and prints a summary.
pub fn run(args: &[String]) -> Result<(), String> {
    let mut ases = 4000usize;
    let mut seed = 2020u64;
    let mut reps = 3usize;
    let mut out = String::from("BENCH_restart.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ases" => ases = flag_value("--ases", it.next())?,
            "--seed" => seed = flag_value("--seed", it.next())?,
            "--reps" => reps = flag_value("--reps", it.next())?,
            "--out" => out = it.next().ok_or("--out requires a file path")?.clone(),
            "--help" | "-h" => {
                println!("usage: flatnet bench restart [--ases N] [--seed S] [--reps R]");
                println!("                             [--out PATH]");
                println!("--ases N:  topology size (default 4000)");
                println!("--seed S:  generator seed (default 2020)");
                println!("--reps R:  repetitions per path, median reported (default 3)");
                println!("--out PATH: JSON report path (default BENCH_restart.json)");
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }
    if reps == 0 {
        return Err("--reps must be positive".into());
    }

    println!("# flatnet bench restart — {ases} ASes (seed {seed}), {reps} reps");
    let dir = std::env::temp_dir().join(format!("flatnet-bench-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let store = dir.join("bench.store").display().to_string();

    // ---- Cold path: generate + infer tiers + compile, `reps` times. ----
    let mut cold_ms = Vec::with_capacity(reps);
    let mut reference = None;
    for _ in 0..reps {
        let t = Instant::now();
        let net = generate(&NetGenConfig::paper_2020(ases, seed));
        let tiers = net.tiers_for(&net.truth);
        let topo = TopologySnapshot::compile(&net.truth);
        cold_ms.push(t.elapsed().as_secs_f64() * 1e3);
        reference = Some(StoredSnapshot { version: 1, graph: net.truth, tiers, topo });
    }
    let reference = reference.expect("reps >= 1");

    // ---- Persist once (timed separately: restart cost, not save cost). ----
    let t = Instant::now();
    flatnet_store::save_atomic(&store, &reference).map_err(|e| e.to_string())?;
    let save_ms = t.elapsed().as_secs_f64() * 1e3;
    let store_bytes = std::fs::metadata(&store).map_err(|e| format!("{store}: {e}"))?.len();

    // ---- Warm path: load + checksum + validated reconstruction. ----
    let mut warm_ms = Vec::with_capacity(reps);
    let mut warm = None;
    for _ in 0..reps {
        let t = Instant::now();
        let loaded = flatnet_store::load(&store).map_err(|e| e.to_string())?;
        warm_ms.push(t.elapsed().as_secs_f64() * 1e3);
        warm = Some(loaded);
    }
    let warm = warm.expect("reps >= 1");

    // A faster restart that serves a different topology is a bug, not a
    // speedup: refuse to report.
    if !flatnet_store::topo_identical(&warm.topo, &reference.topo) {
        return Err("warm-start snapshot is not bit-identical to the cold compile".into());
    }
    let _ = std::fs::remove_dir_all(&dir);

    let cold = median_ms(cold_ms);
    let hot = median_ms(warm_ms);
    let speedup = cold / hot.max(1e-9);
    let report = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"flatnet-bench-restart/v1\",\n",
            "  \"ases\": {ases},\n",
            "  \"seed\": {seed},\n",
            "  \"reps\": {reps},\n",
            "  \"cold_ms\": {cold:.3},\n",
            "  \"warm_ms\": {hot:.3},\n",
            "  \"save_ms\": {save_ms:.3},\n",
            "  \"speedup\": {speedup:.2},\n",
            "  \"store_bytes\": {store_bytes},\n",
            "  \"identical\": true\n",
            "}}\n",
        ),
        ases = ases,
        seed = seed,
        reps = reps,
        cold = cold,
        hot = hot,
        save_ms = save_ms,
        speedup = speedup,
        store_bytes = store_bytes,
    );
    std::fs::write(&out, &report).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "cold {cold:.1} ms, warm {hot:.1} ms ({speedup:.1}x), save {save_ms:.1} ms, \
         store {store_bytes} bytes -> {out}"
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn restart_bench_small_run_writes_report() {
        let out = std::env::temp_dir()
            .join(format!("flatnet-restartbench-{}.json", std::process::id()));
        let args: Vec<String> =
            ["--ases", "300", "--seed", "4", "--reps", "1", "--out", out.to_str().unwrap()]
                .iter()
                .map(|s| s.to_string())
                .collect();
        super::run(&args).unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains("\"schema\": \"flatnet-bench-restart/v1\""));
        assert!(text.contains("\"identical\": true"));
        let _ = std::fs::remove_file(&out);
    }
}
