//! The repro harness — regenerates every table and figure of "Cloud
//! Provider Connectivity in the Flat Internet" (IMC 2020) on the
//! synthetic substrate, as text. Reachable as the `repro` binary of this
//! crate and as `flatnet repro`.
//!
//! ```sh
//! cargo run --release -p flatnet-bench --bin repro -- all
//! cargo run --release -p flatnet-bench --bin repro -- fig2 table1 --ases 2000
//! cargo run --release -p flatnet-cli --bin flatnet -- repro fig2 --fast --metrics out.json
//! ```
//!
//! Experiments: peers validation fig2 table1 fig3 fig4 table2 fig6 fig7
//! fig8 fig9 fig10 fig11 fig12 fig13 table3 appendix_a appendix_b
//! appendix_d | all. Flags: `--ases N` `--seed S` `--leakers K` `--fast`
//! `--checkpoint DIR` `--threads N` `--metrics PATH` `--log-level LEVEL`.
//!
//! Experiments are panic-isolated: one blowing up doesn't kill the run, it
//! is reported and the remaining experiments still execute (exit code 1 at
//! the end). With `--checkpoint DIR`, each completed experiment drops a
//! `DIR/<name>.done` marker and an interrupted `all` run resumes where it
//! left off, skipping experiments already marked done; each completed
//! experiment also writes a `DIR/<name>.metrics.json` delta snapshot of
//! the metrics it alone recorded. `--metrics PATH` writes the whole run's
//! final `flatnet-obs/v1` snapshot to PATH on exit.

use crate::{Lab, Scale};
use flatnet_asgraph::astype::{refine, AsType};
use flatnet_asgraph::AsId;
use flatnet_core::cone_compare::{cone_vs_hfr, correlation_other, summarize};
use flatnet_core::leaks::{average_resilience_cdf, leak_cdf, leak_cdf_with_semantics, subprefix_hijack_cdf, Announce, LeakCdf, Locking};
use flatnet_core::path_validation::validate_paths;
use flatnet_core::pathlen::path_length_profile;
use flatnet_core::pipeline::methodology_iterations;
use flatnet_core::pops_exp::{
    continent_coverage, coverage_row, deployment_split, rdns_table, RADII_KM,
};
use flatnet_core::reachability::{rank_by_hierarchy_free, reachability_profile};
use flatnet_core::reliance_exp::{
    reliance_under_hierarchy_free, reliance_under_tier1_free, tier1_free_reach_also_excluding,
};
use flatnet_core::report::{ascii_cdf, ascii_world_map, thousands, TextTable};
use flatnet_core::unreachable::unreachable_breakdown;
use flatnet_geo::geolocate::{fiber_rtt_ms, geolocate};
use flatnet_geo::pops::{union_footprints, Footprint};
use flatnet_tracesim::CampaignOptions;

/// Parses a flag's value, reporting the flag name and the offending value
/// instead of panicking.
fn flag_value<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    let v = value.ok_or_else(|| format!("{flag} requires a value"))?;
    v.parse().map_err(|e| format!("bad value {v:?} for {flag}: {e}"))
}

/// Runs the repro harness with CLI-style `args` (flags + experiment
/// names, program name already stripped). Returns the number of failed
/// experiments, or an error message for unusable arguments.
pub fn run(args: &[String]) -> Result<usize, String> {
    flatnet_obs::log::init_from_env();
    let mut scale = Scale::default_scale();
    let mut wanted: Vec<String> = Vec::new();
    let mut checkpoint: Option<std::path::PathBuf> = None;
    let mut metrics_path: Option<std::path::PathBuf> = None;
    let mut threads = 0usize;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ases" => scale.n_ases = flag_value("--ases", it.next())?,
            "--seed" => scale.seed = flag_value("--seed", it.next())?,
            "--leakers" => scale.n_leakers = flag_value("--leakers", it.next())?,
            "--fast" => scale = Scale::fast(),
            "--threads" => threads = flag_value("--threads", it.next())?,
            "--checkpoint" => {
                let dir = it.next().ok_or("--checkpoint requires a directory")?;
                checkpoint = Some(std::path::PathBuf::from(dir));
            }
            "--metrics" => {
                let path = it.next().ok_or("--metrics requires a file path")?;
                metrics_path = Some(std::path::PathBuf::from(path));
            }
            "--log-level" => {
                let name = it.next().ok_or("--log-level requires error|warn|info|debug")?;
                let level = flatnet_obs::log::parse_level(name)
                    .ok_or_else(|| format!("bad value {name:?} for --log-level"))?;
                flatnet_obs::log::set_level(level);
            }
            "--help" | "-h" => {
                println!("usage: repro [EXPERIMENT...] [--ases N] [--seed S] [--leakers K] [--fast]");
                println!("             [--checkpoint DIR] [--threads N] [--metrics PATH] [--log-level LEVEL]");
                println!("experiments: peers validation fig2 table1 fig3 fig4 table2 fig6 fig7 fig8");
                println!("             fig9 fig10 fig11 fig12 fig13 table3 appendix_a appendix_b");
                println!("             appendix_d erratum ablation_topology rankings feeds all");
                println!("--checkpoint DIR: drop a DIR/<name>.done marker per finished experiment");
                println!("                  (plus a DIR/<name>.metrics.json metric delta)");
                println!("                  and skip already-marked experiments on the next run");
                println!("--threads N:      worker threads for parallel sweeps (0 = all cores)");
                println!("--metrics PATH:   write the run's flatnet-obs/v1 metrics snapshot to PATH");
                println!("--log-level L:    stderr verbosity: error|warn|info|debug (or $FLATNET_LOG)");
                return Ok(0);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?}"));
            }
            other => wanted.push(other.to_string()),
        }
    }
    scale.threads = threads;
    // Preregister the parser counters so every snapshot carries the full
    // per-parser counter set, even for experiments that parse nothing.
    for format in ["caida", "mrt", "scamper", "warts", "prefixdb"] {
        flatnet_obs::record_parse(format, 0, 0);
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = [
            "peers", "validation", "fig2", "table1", "fig3", "fig4", "table2", "fig6", "fig7",
            "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "table3", "appendix_a",
            "appendix_b", "appendix_d", "erratum", "ablation_topology", "rankings", "feeds",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    if let Some(dir) = &checkpoint {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create checkpoint dir {}: {e}", dir.display()))?;
    }

    let lab = Lab::new(scale);
    println!(
        "# flatnet repro — {} ASes (2020 epoch), seed {}, {} leak sims/config\n",
        scale.n_ases, scale.seed, scale.n_leakers
    );
    let mut failed = 0usize;
    for w in &wanted {
        let marker = checkpoint.as_ref().map(|dir| dir.join(format!("{w}.done")));
        if let Some(m) = &marker {
            if m.exists() {
                println!("[{w} skipped: already checkpointed at {}]\n", m.display());
                continue;
            }
        }
        let t0 = std::time::Instant::now();
        let before = flatnet_obs::snapshot();
        // Panic isolation: one experiment blowing up must not take down
        // the rest of an `all` run (or an existing checkpoint trail).
        let outcome = {
            let _span = flatnet_obs::span_root("report");
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_experiment(w, &lab)))
        };
        match outcome {
            Ok(true) => {
                let elapsed = t0.elapsed();
                if let Some(m) = &marker {
                    let note = format!(
                        "completed in {elapsed:.1?} (ases={}, seed={}, leakers={})\n",
                        scale.n_ases, scale.seed, scale.n_leakers
                    );
                    std::fs::write(m, note)
                        .map_err(|e| format!("cannot write checkpoint {}: {e}", m.display()))?;
                }
                if let Some(dir) = &checkpoint {
                    // What this experiment alone recorded (the Lab caches
                    // shared artifacts, so the first experiment to need
                    // one pays for — and observes — building it).
                    let delta = flatnet_obs::snapshot().delta_since(&before);
                    let path = dir.join(format!("{w}.metrics.json"));
                    std::fs::write(&path, delta.to_json())
                        .map_err(|e| format!("cannot write metrics {}: {e}", path.display()))?;
                }
                println!("[{w} took {elapsed:.1?}]\n");
            }
            Ok(false) => flatnet_obs::warn!("unknown experiment {w:?} (see --help)"),
            Err(payload) => {
                failed += 1;
                flatnet_obs::error!(
                    "[{w} FAILED after {:.1?}: {}]",
                    t0.elapsed(),
                    flatnet_core::parallel::panic_message(payload.as_ref())
                );
            }
        }
    }
    let snap = flatnet_obs::snapshot();
    if let Some(path) = &metrics_path {
        std::fs::write(path, snap.to_json())
            .map_err(|e| format!("cannot write metrics {}: {e}", path.display()))?;
        flatnet_obs::info!("metrics snapshot written to {}", path.display());
    }
    flatnet_obs::debug!("metrics summary:\n{}", snap.render_table());
    Ok(failed)
}

/// Dispatches one experiment; false means the name is unknown.
fn run_experiment(name: &str, lab: &Lab) -> bool {
    match name {
        "peers" => peers(lab),
        "validation" => validation(lab),
        "fig2" => fig2(lab),
        "table1" => table1(lab),
        "fig3" => fig3(lab),
        "fig4" => fig4(lab),
        "table2" => table2(lab),
        "fig6" => fig6(lab),
        "fig7" => fig7(lab),
        "fig8" => fig8(lab),
        "fig9" => fig9(lab),
        "fig10" => fig10(lab),
        "fig11" => fig11(lab),
        "fig12" => fig12(lab),
        "fig13" => fig13(lab),
        "table3" => table3(lab),
        "appendix_a" => appendix_a(lab),
        "appendix_b" => appendix_b(lab),
        "appendix_d" => appendix_d(lab),
        "erratum" => erratum(lab),
        "ablation_topology" => ablation_topology(lab),
        "rankings" => rankings(lab),
        "feeds" => feeds(lab),
        _ => return false,
    }
    true
}

/// §4.1: peer counts, BGP feeds alone vs augmented with traceroutes.
fn peers(lab: &Lab) {
    println!("## §4.1 — cloud peers: BGP feeds alone vs augmented with cloud traceroutes");
    println!("(paper: 333 vs 1,389 Amazon; 818 vs 7,757 Google; 3,027 vs 3,702 IBM; 315 vs 3,580 Microsoft)\n");
    let m = lab.measured2020();
    let mut t = TextTable::new(["cloud", "bgp-only", "augmented", "ground truth", "recovered"]);
    for row in &m.peer_counts {
        t.row([
            row.name.clone(),
            thousands(row.bgp_only as u64),
            thousands(row.augmented as u64),
            thousands(row.truth as u64),
            format!("{:.0}%", 100.0 * row.augmented as f64 / row.truth.max(1) as f64),
        ]);
    }
    println!("{}", t.render());
}

/// §5: FDR/FNR across the methodology iterations.
fn validation(lab: &Lab) {
    println!("## §5 — neighbor-inference validation across methodology iterations");
    println!("(paper: initial ~50% FDR; final 11-15% FDR, ~21% FNR)\n");
    let opts = CampaignOptions { dest_sample: 1.0, ..Default::default() };
    let stages = methodology_iterations(lab.net2020(), &opts);
    for (name, per_cloud) in &stages {
        println!("methodology: {name}");
        let mut t = TextTable::new(["cloud", "TP", "FP", "FN", "FDR", "FNR"]);
        for cloud in &lab.net2020().clouds {
            let v = &per_cloud[&cloud.asn.0];
            t.row([
                cloud.spec.name.clone(),
                v.tp.to_string(),
                v.fp.to_string(),
                v.fn_.to_string(),
                format!("{:.1}%", 100.0 * v.fdr()),
                format!("{:.1}%", 100.0 * v.fnr()),
            ]);
        }
        println!("{}", t.render());
    }
}

/// Fig. 2: the three reachability levels for clouds, Tier-1s, Tier-2s.
fn fig2(lab: &Lab) {
    println!("## Fig. 2 — provider-free / Tier-1-free / hierarchy-free reachability");
    println!("(augmented 2020 topology; sorted by hierarchy-free reachability)\n");
    let net = lab.net2020();
    let g = lab.graph2020();
    let tiers = lab.tiers2020();
    let focus: Vec<AsId> = net
        .cloud_providers()
        .map(|c| c.asn)
        .chain(net.tier1.iter().copied())
        .chain(net.tier2.iter().copied())
        .collect();
    let mut profile = reachability_profile(g, &tiers, &focus);
    profile.sort_by_key(|r| std::cmp::Reverse(r.hierarchy_free));
    let mut t = TextTable::new(["network", "kind", "I\\Po", "I\\Po\\T1", "I\\Po\\T1\\T2", "hf %"]);
    for r in &profile {
        let kind = if net.cloud_providers().any(|c| c.asn == r.asn) {
            "cloud"
        } else if net.tier1.contains(&r.asn) {
            "tier1"
        } else {
            "tier2"
        };
        t.row([
            lab.name(r.asn),
            kind.to_string(),
            thousands(r.provider_free as u64),
            thousands(r.tier1_free as u64),
            thousands(r.hierarchy_free as u64),
            format!("{:.1}%", r.hierarchy_free_pct()),
        ]);
    }
    println!("{}", t.render());
}

/// Table 1: top-20 by hierarchy-free reachability, 2015 vs 2020.
fn table1(lab: &Lab) {
    println!("## Table 1 — top 20 ASes by hierarchy-free reachability, 2015 vs 2020\n");
    for (year, g, hfr, net) in [
        ("2015", lab.graph2015(), lab.hfr2015(), lab.net2015()),
        ("2020", lab.graph2020(), lab.hfr2020(), lab.net2020()),
    ] {
        println!("{year}:");
        let ranked = rank_by_hierarchy_free(g, hfr);
        let mut t = TextTable::new(["#", "network", "reach", "%"]);
        for r in ranked.iter().take(20) {
            t.row([
                r.rank.to_string(),
                net.name_of(r.asn),
                thousands(r.reach as u64),
                format!("{:.1}%", r.pct),
            ]);
        }
        // The clouds' positions even when below the top 20 (2015: the
        // paper lists Microsoft #62 and Amazon #206).
        for cloud in net.cloud_providers() {
            if let Some(r) = ranked.iter().find(|r| r.asn == cloud.asn) {
                if r.rank > 20 {
                    t.row([
                        r.rank.to_string(),
                        net.name_of(r.asn),
                        thousands(r.reach as u64),
                        format!("{:.1}%", r.pct),
                    ]);
                }
            }
        }
        println!("{}", t.render());
    }
    // % change for the clouds across epochs.
    let r20 = rank_by_hierarchy_free(lab.graph2020(), lab.hfr2020());
    let r15 = rank_by_hierarchy_free(lab.graph2015(), lab.hfr2015());
    let mut t = TextTable::new(["cloud", "2015 %", "2020 %", "change"]);
    for cloud in lab.net2020().cloud_providers() {
        let p20 = r20.iter().find(|r| r.asn == cloud.asn).map(|r| r.pct).unwrap_or(0.0);
        let p15 = r15.iter().find(|r| r.asn == cloud.asn).map(|r| r.pct).unwrap_or(0.0);
        t.row([
            cloud.spec.name.clone(),
            format!("{p15:.1}%"),
            format!("{p20:.1}%"),
            format!("{:+.1} pts", p20 - p15),
        ]);
    }
    println!("cloud change 2015 -> 2020:\n{}", t.render());
}

/// Fig. 3: hierarchy-free reachability vs customer cone.
fn fig3(lab: &Lab) {
    println!("## Fig. 3 — hierarchy-free reachability vs customer cone (all ASes)\n");
    let net = lab.net2020();
    let g = lab.graph2020();
    let tiers = lab.tiers2020();
    let clouds: Vec<AsId> = net.cloud_providers().map(|c| c.asn).collect();
    let points = cone_vs_hfr(g, &tiers, lab.hfr2020(), &clouds);
    let threshold = ((g.len() as f64) * 0.015).ceil() as u32;
    let s = summarize(&points, threshold);
    println!(
        "ASes with hierarchy-free reachability >= {}: {}   |   ASes with customer cone >= {}: {}",
        threshold,
        thousands(s.high_hfr as u64),
        threshold,
        thousands(s.high_cone as u64)
    );
    println!("(paper, at >= 1,000: 8,374 vs 51)");
    if let Some(r) = correlation_other(&points) {
        println!("correlation (log cone vs hfr) over non-tier networks: {r:.3} (paper: \"little correlation\")");
    }
    let mut t = TextTable::new(["network", "customer cone", "hierarchy-free reach"]);
    for &asn in &clouds {
        let p = points.iter().find(|p| p.asn == asn).unwrap();
        t.row([lab.name(asn), thousands(p.cone as u64), thousands(p.hfr as u64)]);
    }
    for &asn in net.tier1.iter().take(3) {
        let p = points.iter().find(|p| p.asn == asn).unwrap();
        t.row([lab.name(asn), thousands(p.cone as u64), thousands(p.hfr as u64)]);
    }
    println!("{}", t.render());
}

/// Fig. 4: unreachable-AS type split per provider.
fn fig4(lab: &Lab) {
    println!("## Fig. 4 — types of unreachable ASes under hierarchy-free constraints\n");
    let net = lab.net2020();
    let g = lab.graph2020();
    let tiers = lab.tiers2020();
    let type_of = |n: flatnet_asgraph::NodeId| {
        net.truth
            .index_of(g.asn(n))
            .map(|tn| {
                let m = &net.meta[tn.idx()];
                refine(m.class, m.users)
            })
            .unwrap_or(AsType::Enterprise)
    };
    let focus: Vec<AsId> = net
        .cloud_providers()
        .map(|c| c.asn)
        .chain(net.tier1.iter().copied().take(4))
        .chain(net.tier2.iter().copied().take(4))
        .collect();
    let mut t = TextTable::new(["network", "unreachable", "content", "transit", "access", "enterprise"]);
    for asn in focus {
        if let Some(bd) = unreachable_breakdown(g, &tiers, asn, type_of) {
            t.row([
                lab.name(asn),
                thousands(bd.total as u64),
                format!("{:.1}%", bd.pct(AsType::Content)),
                format!("{:.1}%", bd.pct(AsType::Transit)),
                format!("{:.1}%", bd.pct(AsType::Access)),
                format!("{:.1}%", bd.pct(AsType::Enterprise)),
            ]);
        }
    }
    println!("{}", t.render());
    println!("(paper: Google/IBM/Microsoft leave few access networks unreachable; Amazon resembles a transit provider)");
}

/// Table 2: top-3 reliance per cloud.
fn table2(lab: &Lab) {
    println!("## Table 2 — top-3 reliance networks per cloud (hierarchy-free constraints)\n");
    let g = lab.graph2020();
    let tiers = lab.tiers2020();
    let mut t = TextTable::new(["cloud", "#1", "#2", "#3", "receivers"]);
    for cloud in lab.net2020().cloud_providers() {
        if let Some(prof) = reliance_under_hierarchy_free(g, &tiers, cloud.asn) {
            let cell = |i: usize| {
                prof.top(3)
                    .get(i)
                    .map(|e| format!("{} ({:.1})", lab.name(e.asn), e.rely))
                    .unwrap_or_default()
            };
            t.row([
                cloud.spec.name.clone(),
                cell(0),
                cell(1),
                cell(2),
                thousands(prof.receivers as u64),
            ]);
        }
    }
    println!("{}", t.render());
}

/// Fig. 6: reliance histograms.
fn fig6(lab: &Lab) {
    println!("## Fig. 6 — reliance histogram per cloud (bin width 25, hierarchy-free)\n");
    let g = lab.graph2020();
    let tiers = lab.tiers2020();
    for cloud in lab.net2020().cloud_providers() {
        if let Some(prof) = reliance_under_hierarchy_free(g, &tiers, cloud.asn) {
            let hist = prof.histogram(25.0);
            let rendered: Vec<String> =
                hist.iter().map(|(lo, c)| format!("[{lo:.0}+): {c}")).collect();
            println!("{:<10} {}", cloud.spec.name, rendered.join("  "));
        }
    }
    println!("\n(paper: rely ≈ 1 for the overwhelming majority; a handful of networks higher)");
}

fn leak_configs() -> [(&'static str, Announce, Locking); 5] {
    [
        ("announce to all, global peer lock", Announce::ToAll, Locking::Global),
        ("announce to all, T1+T2 peer lock", Announce::ToAll, Locking::Tier12),
        ("announce to all, T1 peer lock", Announce::ToAll, Locking::Tier1),
        ("announce to all", Announce::ToAll, Locking::None),
        ("announce to T1, T2, and providers", Announce::ToTier12AndProviders, Locking::None),
    ]
}

fn leak_figure(lab: &Lab, victim: AsId, weights: Option<&[f64]>, label: &str) {
    let g = lab.graph2020();
    let tiers = lab.tiers2020();
    println!("victim: {} — {label}", lab.name(victim));
    println!("{:<38} {:>7} {:>7} {:>7}  cdf 0..100%", "configuration", "median", "p90", "worst");
    for (name, a, l) in leak_configs() {
        if let Some(cdf) = leak_cdf(g, &tiers, victim, a, l, lab.scale.n_leakers, lab.scale.seed, weights) {
            print_leak_line(name, &cdf);
        }
    }
    let avg = average_resilience_cdf(g, lab.scale.n_avg, lab.scale.n_avg, lab.scale.seed, weights);
    print_leak_line("average resilience", &avg);
}

fn print_leak_line(name: &str, cdf: &LeakCdf) {
    println!(
        "{:<38} {:>6.1}% {:>6.1}% {:>6.1}%  |{}|",
        name,
        100.0 * cdf.median(),
        100.0 * cdf.percentile(90.0),
        100.0 * cdf.max(),
        ascii_cdf(&cdf.fractions, 32)
    );
}

/// Fig. 7a-d: Microsoft, Amazon, IBM, Facebook.
fn fig7(lab: &Lab) {
    println!("## Fig. 7 — route-leak resilience: Microsoft / Amazon / IBM / Facebook\n");
    for name in ["Microsoft", "Amazon", "IBM", "Facebook"] {
        let asn = lab
            .net2020()
            .clouds
            .iter()
            .find(|c| c.spec.name == name)
            .map(|c| c.asn)
            .expect("provider exists");
        leak_figure(lab, asn, None, "% of ASes detoured");
        println!();
    }
}

/// Fig. 8: Google (plus the more-specific-hijack extension).
fn fig8(lab: &Lab) {
    println!("## Fig. 8 — route-leak resilience: Google\n");
    let google = lab.net2020().clouds[0].asn;
    leak_figure(lab, google, None, "% of ASes detoured");
    println!("\nextension — more-specific (sub-prefix) hijacks, where LPM always prefers the hijacker:");
    let g = lab.graph2020();
    let tiers = lab.tiers2020();
    for locking in [Locking::None, Locking::Tier12, Locking::Global] {
        if let Some(cdf) =
            subprefix_hijack_cdf(g, &tiers, google, locking, lab.scale.n_leakers, lab.scale.seed, None)
        {
            print_leak_line(&format!("sub-prefix, {}", locking.name()), &cdf);
        }
    }
}

/// Fig. 9: Google, weighted by users.
fn fig9(lab: &Lab) {
    println!("## Fig. 9 — route-leak resilience: Google, weighted by user population\n");
    let weights = lab.user_weights_2020();
    leak_figure(lab, lab.net2020().clouds[0].asn, Some(&weights), "% of users detoured");
}

/// Fig. 10: Google 2015 vs 2020.
fn fig10(lab: &Lab) {
    println!("## Fig. 10 — Google leak resilience, 2015 vs 2020 (announce to all)\n");
    for (year, g, tiers, net) in [
        ("2015", lab.graph2015(), lab.tiers2015(), lab.net2015()),
        ("2020", lab.graph2020(), lab.tiers2020(), lab.net2020()),
    ] {
        let google = net.clouds[0].asn;
        if let Some(cdf) = leak_cdf(
            g,
            &tiers,
            google,
            Announce::ToAll,
            Locking::None,
            lab.scale.n_leakers,
            lab.scale.seed,
            None,
        ) {
            print_leak_line(year, &cdf);
        }
    }
    println!("(paper: only small changes — new peers are mostly small edge ASes)");
}

fn cohort_footprints(lab: &Lab) -> (Vec<&Footprint>, Vec<&Footprint>) {
    let net = lab.net2020();
    let clouds: Vec<&Footprint> = net
        .cloud_providers()
        .map(|c| &net.geo.footprints[&c.asn.0])
        .collect();
    let transits: Vec<&Footprint> = net
        .tier1
        .iter()
        .chain(net.tier2.iter().take(8))
        .map(|a| &net.geo.footprints[&a.0])
        .collect();
    (clouds, transits)
}

/// Fig. 11: deployment locations split, plotted over population density.
fn fig11(lab: &Lab) {
    println!("## Fig. 11 — PoP deployment metros by cohort (over population density)\n");
    let (clouds, transits) = cohort_footprints(lab);
    let split = deployment_split(&clouds, &transits);
    // The map: population density as shading, PoP cohorts as C/T/B.
    let grid = &lab.net2020().popgrid;
    let cloud_u = union_footprints("clouds", &clouds);
    let transit_u = union_footprints("transit", &transits);
    let mut markers: Vec<(f64, f64, char)> = Vec::new();
    for s in transit_u.sites() {
        markers.push((s.point.lat, s.point.lon, 'T'));
    }
    for s in cloud_u.sites() {
        let c = if transit_u.has_city(&s.city) { 'B' } else { 'C' };
        markers.push((s.point.lat, s.point.lon, c));
    }
    let map = ascii_world_map(
        110,
        26,
        |lat, lon| {
            let here = flatnet_geo::GeoPoint::new(lat, lon);
            grid.cells()
                .iter()
                .filter(|c| flatnet_geo::haversine_km(c.center, here) < 400.0)
                .map(|c| c.population)
                .sum()
        },
        &markers,
    );
    println!("{map}");
    println!("shading = population density; C = cloud-only, T = transit-only, B = both cohorts\n");
    println!("cloud-only metros   : {:?}", split.cloud_only);
    println!("transit-only metros : {:?}", split.transit_only);
    println!("shared metros       : {}", split.both.len());
    println!("(paper: clouds are a subset of transit locations except Shanghai/Beijing)");
}

/// Fig. 12: population coverage.
fn fig12(lab: &Lab) {
    println!("## Fig. 12 — % of population within 500/700/1000 km of PoPs\n");
    let grid = &lab.net2020().popgrid;
    let (clouds, transits) = cohort_footprints(lab);
    let cloud_union = union_footprints("cloud cohort", &clouds);
    let transit_union = union_footprints("transit cohort", &transits);
    println!("per continent (cloud | transit):");
    let mut t = TextTable::new(["continent", "cloud 500", "700", "1000", "transit 500", "700", "1000"]);
    let c_rows = continent_coverage(grid, &cloud_union.points());
    let t_rows = continent_coverage(grid, &transit_union.points());
    for (c, tr) in c_rows.iter().zip(&t_rows) {
        t.row([
            c.continent.name().to_string(),
            format!("{:.1}%", c.coverage[0]),
            format!("{:.1}%", c.coverage[1]),
            format!("{:.1}%", c.coverage[2]),
            format!("{:.1}%", tr.coverage[0]),
            format!("{:.1}%", tr.coverage[1]),
            format!("{:.1}%", tr.coverage[2]),
        ]);
    }
    println!("{}", t.render());
    println!("per network (worldwide, radii {RADII_KM:?} km):");
    let mut rows: Vec<_> = clouds
        .iter()
        .chain(transits.iter())
        .map(|fp| coverage_row(grid, fp))
        .collect();
    rows.sort_by(|a, b| b.world[0].partial_cmp(&a.world[0]).unwrap());
    let mut t = TextTable::new(["network", "500 km", "700 km", "1000 km"]);
    for r in rows {
        t.row([
            r.name,
            format!("{:.1}%", r.world[0]),
            format!("{:.1}%", r.world[1]),
            format!("{:.1}%", r.world[2]),
        ]);
    }
    println!("{}", t.render());
}

/// Fig. 13: path length mix 2015 vs 2020, three weightings.
fn fig13(lab: &Lab) {
    println!("## Fig. 13 — path lengths from the clouds, 2015 vs 2020\n");
    let mut t = TextTable::new(["cloud", "year", "weighting", "1 hop", "2 hops", "3+ hops"]);
    for (year, g, net) in [
        ("2015", lab.graph2015(), lab.net2015()),
        ("2020", lab.graph2020(), lab.net2020()),
    ] {
        let users: Vec<f64> = g
            .nodes()
            .map(|n| {
                net.truth
                    .index_of(g.asn(n))
                    .map(|tn| net.meta[tn.idx()].users as f64)
                    .unwrap_or(0.0)
            })
            .collect();
        for cloud in net.cloud_providers() {
            if year == "2015" && cloud.spec.name == "Microsoft" {
                // The 2015 traceroute dataset had no Microsoft traces.
                t.row([
                    cloud.spec.name.clone(),
                    year.to_string(),
                    "(no 2015 traceroute data)".to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
            if let Some(p) = path_length_profile(g, cloud.asn, &users) {
                for (w, s) in [
                    ("ASes", p.all_ases),
                    ("eyeball ASes", p.eyeball_ases),
                    ("population", p.population),
                ] {
                    t.row([
                        cloud.spec.name.clone(),
                        year.to_string(),
                        w.to_string(),
                        format!("{:.1}%", s.one),
                        format!("{:.1}%", s.two),
                        format!("{:.1}%", s.three_plus),
                    ]);
                }
            }
        }
    }
    println!("{}", t.render());
}

/// Table 3: PoPs / hostnames / % rDNS.
fn table3(lab: &Lab) {
    println!("## Table 3 — PoPs, router hostnames, % rDNS-confirmed\n");
    let (clouds, transits) = cohort_footprints(lab);
    let all: Vec<&Footprint> = clouds.iter().chain(transits.iter()).copied().collect();
    let mut t = TextTable::new(["network", "ASN", "# PoPs", "# hostnames", "% rDNS"]);
    for row in rdns_table(&all) {
        t.row([
            row.name,
            row.asn.to_string(),
            row.pops.to_string(),
            row.hostnames.to_string(),
            format!("{:.1}%", row.rdns_pct),
        ]);
    }
    println!("{}", t.render());
    println!("(paper: Amazon 0% — no rDNS at all; Microsoft 45.3%)");
}

/// Appendix A: simulated paths contain traceroute paths.
fn appendix_a(lab: &Lab) {
    println!("## Appendix A — simulated tied-best paths vs traceroute paths\n");
    let net = lab.net2020();
    let m = lab.measured2020();
    let clouds: Vec<AsId> = net.clouds.iter().map(|c| c.asn).collect();
    let agreement = validate_paths(&m.augmented, &net.addressing.resolver, &m.campaign, &clouds);
    let mut t = TextTable::new(["cloud", "scored traces", "agreement"]);
    for cloud in &net.clouds {
        let a = &agreement[&cloud.asn.0];
        t.row([
            cloud.spec.name.clone(),
            thousands(a.scored as u64),
            format!("{:.1}%", a.pct()),
        ]);
    }
    println!("{}", t.render());
    println!("(paper: 73.3% Amazon, 91.9% Google, 82.9% IBM, 85.4% Microsoft)");
}

/// Appendix B: Sprint/DTAG-style reliance on a few Tier-2s.
fn appendix_b(lab: &Lab) {
    println!("## Appendix B — hierarchical Tier-1s rely on a handful of Tier-2s\n");
    let net = lab.net2020();
    let g = lab.graph2020();
    let tiers = lab.tiers2020();
    let t2_set: std::collections::BTreeSet<u32> = net.tier2.iter().map(|a| a.0).collect();
    // The two least-diversified Tier-1s (the generator's Sprint/DTAG).
    for &t1 in net.tier1.iter().rev().take(2) {
        let prof = &reachability_profile(g, &tiers, &[t1])[0];
        let Some(rel) = reliance_under_tier1_free(g, &tiers, t1) else { continue };
        let top6: Vec<AsId> = rel
            .entries
            .iter()
            .filter(|e| t2_set.contains(&e.asn.0))
            .take(6)
            .map(|e| e.asn)
            .collect();
        let reduced = tier1_free_reach_also_excluding(g, &tiers, t1, &top6).unwrap_or(0);
        println!(
            "{}: Tier-1-free {} -> hierarchy-free {}; removing just its top-6 Tier-2s ({}) gives {}",
            lab.name(t1),
            thousands(prof.tier1_free as u64),
            thousands(prof.hierarchy_free as u64),
            top6.iter().map(|a| lab.name(*a)).collect::<Vec<_>>().join(", "),
            thousands(reduced as u64),
        );
    }
    println!("(paper: six Tier-2s cover almost the entire decline for Sprint and Deutsche Telekom)");
}

/// Appendix D: facility-candidate + RTT geolocation.
fn appendix_d(lab: &Lab) {
    println!("## Appendix D — PeeringDB-candidate + RTT-verified geolocation\n");
    let net = lab.net2020();
    let mut total = 0usize;
    let mut placed = 0usize;
    let mut correct = 0usize;
    for asn in net.tier1.iter().chain(net.tier2.iter().take(6)) {
        let fp = &net.geo.footprints[&asn.0];
        let candidates: Vec<(String, flatnet_geo::GeoPoint)> =
            fp.sites().iter().map(|s| (s.city.clone(), s.point)).collect();
        for site in fp.sites() {
            total += 1;
            let hint = site.sources.contains(&flatnet_geo::pops::SiteSource::Rdns);
            let got = geolocate(
                &candidates,
                hint.then_some(site.city.as_str()),
                |vp| Some(fiber_rtt_ms(*vp, site.point)),
            );
            if let Some(res) = got {
                placed += 1;
                if res.city == site.city {
                    correct += 1;
                }
            }
        }
    }
    println!(
        "routers: {total}; geolocated: {placed} ({:.1}%); exact-city: {correct} ({:.1}% of placed)",
        100.0 * placed as f64 / total.max(1) as f64,
        100.0 * correct as f64 / placed.max(1) as f64
    );
    println!("(1 ms RTT bound ≈ 100 km; rDNS hints restrict candidate facilities)");
}

/// Erratum ablation: the paper's original peer-locking simulation flaw vs
/// the published correction.
fn erratum(lab: &Lab) {
    println!("## Erratum ablation — original vs corrected peer-locking semantics");
    println!("(the published erratum: the original simulation let leaks re-enter locking");
    println!(" ASes via non-deploying intermediaries, underestimating peer locking)\n");
    use flatnet_bgpsim::LockingSemantics;
    let g = lab.graph2020();
    let tiers = lab.tiers2020();
    let google = lab.net2020().clouds[0].asn;
    for locking in [Locking::Tier1, Locking::Tier12, Locking::Global] {
        for (label, semantics) in [
            ("pre-erratum", LockingSemantics::PreErratum),
            ("corrected  ", LockingSemantics::Corrected),
        ] {
            if let Some(cdf) = leak_cdf_with_semantics(
                g,
                &tiers,
                google,
                Announce::ToAll,
                locking,
                semantics,
                lab.scale.n_leakers,
                lab.scale.seed,
                None,
            ) {
                print_leak_line(&format!("{} / {label}", locking.name()), &cdf);
            }
        }
    }
}

/// Topology-view ablation: how much does each view of the topology change
/// cloud hierarchy-free reachability? This quantifies the paper's central
/// measurement claim — BGP feeds alone hide the clouds' independence.
fn ablation_topology(lab: &Lab) {
    println!("## Topology ablation — hierarchy-free reachability per topology view\n");
    let net = lab.net2020();
    let clouds: Vec<AsId> = net.cloud_providers().map(|c| c.asn).collect();
    let mut t = TextTable::new(["cloud", "BGP feeds only", "augmented (measured)", "ground truth"]);
    let views: [(&str, &flatnet_asgraph::AsGraph); 3] = [
        ("public", &net.public),
        ("augmented", lab.graph2020()),
        ("truth", &net.truth),
    ];
    let mut per_view: Vec<Vec<f64>> = Vec::new();
    for (_, g) in &views {
        let tiers = net.tiers_for(g);
        let prof = reachability_profile(g, &tiers, &clouds);
        per_view.push(prof.iter().map(|r| r.hierarchy_free_pct()).collect());
    }
    for (i, &asn) in clouds.iter().enumerate() {
        t.row([
            lab.name(asn),
            format!("{:.1}%", per_view[0][i]),
            format!("{:.1}%", per_view[1][i]),
            format!("{:.1}%", per_view[2][i]),
        ]);
    }
    println!("{}", t.render());
    println!("(the augmented view recovers nearly all of the independence the BGP-feed view hides)");
}

/// Cross-metric rankings: degree / transit degree / cone / hegemony vs
/// hierarchy-free reachability, with Kendall tau-b (extends §6.6).
fn rankings(lab: &Lab) {
    println!("## Metric rankings — classic importance metrics vs hierarchy-free reachability\n");
    let net = lab.net2020();
    let g = lab.graph2020();
    let cmp = flatnet_core::rankings::compare_metrics(g, lab.hfr2020(), 48, lab.scale.seed);
    let mut t = TextTable::new(["network", "degree", "transit deg", "cone", "hegemony", "hfr"]);
    let focus: Vec<AsId> = net
        .cloud_providers()
        .map(|c| c.asn)
        .chain(net.tier1.iter().copied().take(3))
        .chain([net.tier2[0]])
        .collect();
    for asn in focus {
        if let Some(r) = cmp.rows.iter().find(|r| r.asn == asn) {
            t.row([
                lab.name(asn),
                r.degree.to_string(),
                r.transit_degree.to_string(),
                thousands(r.cone as u64),
                format!("{:.4}", r.hegemony),
                thousands(r.hfr as u64),
            ]);
        }
    }
    println!("{}", t.render());
    println!("Kendall tau-b vs hierarchy-free reachability (all ASes):");
    for (name, tau) in &cmp.tau_vs_hfr {
        println!("  {name:<15} {tau:+.3}");
    }
    println!("(§6.6: transit-centric metrics are weak predictors of hierarchy-free reach)");
}

/// The BGP-feed experiment: collector RIBs → MRT bytes → Gao inference →
/// accuracy vs ground truth (§2.3/§4.1's premise, quantified).
fn feeds(lab: &Lab) {
    println!("## BGP feeds — collector RIBs, MRT round-trip, relationship inference\n");
    let net = lab.net2020();
    let monitors = 60.min(net.truth.len() / 10).max(8);
    let origins = (net.truth.len() / 2).max(200).min(net.truth.len());
    let exp = flatnet_core::feeds::run_feed_experiment(net, monitors, origins, lab.scale.seed);
    println!(
        "{} monitors, {} origins -> {} RIB entries, {} of MRT",
        exp.monitors,
        thousands(exp.origins as u64),
        thousands(exp.rib_entries as u64),
        human_bytes(exp.mrt_bytes)
    );
    let a = &exp.accuracy;
    println!(
        "c2p links: {:.1}% of observed inferred correctly ({} correct, {} flipped, {} as p2p; {} invisible)",
        100.0 * a.c2p_accuracy(),
        thousands(a.c2p_correct as u64),
        a.c2p_flipped,
        a.c2p_as_p2p,
        thousands(a.c2p_invisible as u64)
    );
    println!(
        "p2p links: {:.1}% recall overall; {:.1}% of all p2p links never appear in the feed",
        100.0 * a.p2p_recall(),
        100.0 * a.p2p_invisible_fraction()
    );
    println!(
        "cloud peer links: {} of {} visible to the feed ({:.0}% invisible — paper: up to 90%)",
        thousands(exp.cloud_peer_links_visible as u64),
        thousands(exp.cloud_peer_links as u64),
        100.0 * exp.cloud_peer_invisible_fraction()
    );
    let r = &exp.refined_accuracy;
    println!(
        "after ProbLink-style refinement ({} links relabeled): c2p {:.1}%, p2p recall {:.1}%",
        exp.refined_relabeled,
        100.0 * r.c2p_accuracy(),
        100.0 * r.p2p_recall()
    );
}

fn human_bytes(n: usize) -> String {
    if n >= 1 << 20 {
        format!("{:.1} MiB", n as f64 / (1 << 20) as f64)
    } else if n >= 1 << 10 {
        format!("{:.1} KiB", n as f64 / (1 << 10) as f64)
    } else {
        format!("{n} B")
    }
}
