//! `flatnet bench serve` — a closed-loop load generator for the
//! `flatnet-serve` daemon.
//!
//! Starts an in-process server on a loopback port, warms the origin
//! pool (so the cache holds every origin once), then runs three load
//! passes from `--conc` closed-loop client threads (a new request
//! leaves only when the previous response arrived, so the offered load
//! adapts to the server instead of overrunning it):
//!
//! 1. **close** — one fresh connection per request (`Connection:
//!    close`), the historical baseline where TCP setup dominates;
//! 2. **keepalive** — each client holds one persistent connection and
//!    issues its requests back-to-back over it (optionally pipelined
//!    `--pipeline` deep), measuring what connection reuse buys;
//! 3. **batch** — persistent connections carrying `origins=` batch
//!    queries that feed whole lane blocks to the sweep kernel.
//!
//! The report (schema `flatnet-bench-serve/v1`) carries per-pass
//! requests/sec, per-connection reuse stats, and the
//! `keepalive_vs_close` throughput ratio that CI gates on (≥3×),
//! alongside the cache-hit latency split and server-side stage
//! percentiles.

use flatnet_netgen::{generate, NetGenConfig};
use flatnet_serve::{ServeConfig, Server, TopologySource};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One request's outcome as seen by a client thread.
struct Sample {
    us: u64,
    status: u16,
    cached: bool,
}

/// One-shot fetch over a fresh connection (the close pass and warmup).
fn fetch(addr: SocketAddr, path: &str) -> Result<(u16, String), String> {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(30))).ok();
    s.set_write_timeout(Some(Duration::from_secs(30))).ok();
    s.set_nodelay(true).ok();
    let req = format!("GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n");
    s.write_all(req.as_bytes()).map_err(|e| format!("write: {e}"))?;
    s.shutdown(Shutdown::Write).ok();
    let mut raw = String::new();
    s.read_to_string(&mut raw).map_err(|e| format!("read: {e}"))?;
    let status: u16 = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split(' ').next())
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| format!("bad response: {raw:?}"))?;
    Ok((status, raw))
}

/// Reads one framed response off a persistent connection: status line,
/// headers, then a `Content-Length` or chunked body. Returns the body
/// and whether the server announced it will close.
fn read_response<R: BufRead>(r: &mut R) -> Result<(u16, String, bool), String> {
    let mut line = String::new();
    if r.read_line(&mut line).map_err(|e| format!("read status: {e}"))? == 0 {
        return Err("connection closed before response".into());
    }
    let status: u16 = line
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.split(' ').next())
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| format!("bad status line: {line:?}"))?;
    let mut content_length = 0usize;
    let mut chunked = false;
    let mut close = false;
    loop {
        line.clear();
        if r.read_line(&mut line).map_err(|e| format!("read header: {e}"))? == 0 {
            return Err("connection closed mid-headers".into());
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((k, v)) = trimmed.split_once(':') {
            let v = v.trim();
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.parse().map_err(|e| format!("bad Content-Length: {e}"))?;
            } else if k.eq_ignore_ascii_case("transfer-encoding") {
                chunked = v.eq_ignore_ascii_case("chunked");
            } else if k.eq_ignore_ascii_case("connection") {
                close = v.eq_ignore_ascii_case("close");
            }
        }
    }
    let mut body = String::new();
    if chunked {
        loop {
            line.clear();
            r.read_line(&mut line).map_err(|e| format!("read chunk size: {e}"))?;
            let size = usize::from_str_radix(line.trim(), 16)
                .map_err(|_| format!("bad chunk size {line:?}"))?;
            let mut chunk = vec![0u8; size + 2]; // payload + CRLF
            r.read_exact(&mut chunk).map_err(|e| format!("read chunk: {e}"))?;
            if size == 0 {
                break;
            }
            body.push_str(
                std::str::from_utf8(&chunk[..size]).map_err(|_| "chunk not UTF-8")?,
            );
        }
    } else if content_length > 0 {
        let mut buf = vec![0u8; content_length];
        r.read_exact(&mut buf).map_err(|e| format!("read body: {e}"))?;
        body = String::from_utf8(buf).map_err(|_| "body not UTF-8")?;
    }
    Ok((status, body, close))
}

/// A client that holds one persistent connection, reconnecting (and
/// counting it) whenever the server closes — budget exhaustion, a 5xx,
/// or a transport error.
struct KeepAliveClient {
    addr: SocketAddr,
    stream: Option<BufReader<TcpStream>>,
    connections: usize,
}

impl KeepAliveClient {
    fn new(addr: SocketAddr) -> Self {
        KeepAliveClient { addr, stream: None, connections: 0 }
    }

    fn connect(&mut self) -> Result<(), String> {
        let s = TcpStream::connect(self.addr).map_err(|e| format!("connect: {e}"))?;
        s.set_read_timeout(Some(Duration::from_secs(30))).ok();
        s.set_write_timeout(Some(Duration::from_secs(30))).ok();
        s.set_nodelay(true).ok();
        self.connections += 1;
        self.stream = Some(BufReader::new(s));
        Ok(())
    }

    /// Writes `paths.len()` pipelined requests, then reads that many
    /// responses. On a mid-stream failure the connection is dropped and
    /// the whole group retried once on a fresh one.
    fn request_group(&mut self, paths: &[String]) -> Result<Vec<(u16, String)>, String> {
        for attempt in 0..2 {
            if self.stream.is_none() {
                self.connect()?;
            }
            match self.try_group(paths) {
                Ok(out) => return Ok(out),
                Err(e) => {
                    self.stream = None;
                    if attempt == 1 {
                        return Err(e);
                    }
                }
            }
        }
        unreachable!("retry loop returns");
    }

    fn try_group(&mut self, paths: &[String]) -> Result<Vec<(u16, String)>, String> {
        let reader = self.stream.as_mut().expect("connected");
        let mut req = String::new();
        for path in paths {
            use std::fmt::Write as _;
            let _ = write!(req, "GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n");
        }
        reader
            .get_mut()
            .write_all(req.as_bytes())
            .map_err(|e| format!("write: {e}"))?;
        let mut out = Vec::with_capacity(paths.len());
        for _ in paths {
            let (status, body, closed) = read_response(reader)?;
            out.push((status, body));
            if closed {
                self.stream = None;
                break;
            }
        }
        if out.len() < paths.len() {
            return Err("server closed mid-pipeline".into());
        }
        Ok(out)
    }
}

/// What one load pass measured.
struct PassResult {
    samples: Vec<Sample>,
    elapsed_ms: f64,
    connections: usize,
}

impl PassResult {
    fn qps(&self) -> f64 {
        self.samples.len() as f64 / (self.elapsed_ms / 1e3).max(1e-9)
    }
}

enum Mode {
    /// Fresh connection per request, `Connection: close`.
    Close,
    /// One persistent connection per client, `pipeline` requests in
    /// flight at a time.
    KeepAlive { pipeline: usize },
    /// Persistent connections carrying `origins=` lists of this size.
    Batch { size: usize },
}

/// Runs one closed-loop pass: `conc` clients pull request indices from
/// a shared counter until `requests` have been issued.
fn run_pass(
    addr: SocketAddr,
    conc: usize,
    requests: usize,
    origins: &Arc<Vec<u32>>,
    mode: &Mode,
) -> Result<PassResult, String> {
    let next = Arc::new(AtomicUsize::new(0));
    let group = match mode {
        Mode::Close => 1,
        Mode::KeepAlive { pipeline } => (*pipeline).max(1),
        Mode::Batch { .. } => 1,
    };
    let batch = match mode {
        Mode::Batch { size } => (*size).max(1),
        _ => 0,
    };
    let keepalive = !matches!(mode, Mode::Close);
    let t0 = Instant::now();
    let clients: Vec<_> = (0..conc)
        .map(|_| {
            let next = Arc::clone(&next);
            let origins = Arc::clone(origins);
            std::thread::spawn(move || -> Result<(Vec<Sample>, usize), String> {
                let mut samples = Vec::new();
                let mut client = KeepAliveClient::new(addr);
                loop {
                    let i = next.fetch_add(group, Ordering::Relaxed);
                    if i >= requests {
                        return Ok((samples, client.connections));
                    }
                    let n = group.min(requests - i);
                    let paths: Vec<String> = (i..i + n)
                        .map(|j| {
                            if batch > 0 {
                                // Rotate a `batch`-wide window through the
                                // pool so every request is a real batch.
                                let list: Vec<String> = (0..batch)
                                    .map(|k| {
                                        origins[(j * batch + k) % origins.len()].to_string()
                                    })
                                    .collect();
                                format!("/v1/reachability?origins={}", list.join(","))
                            } else {
                                format!(
                                    "/v1/reachability?origin={}",
                                    origins[j % origins.len()]
                                )
                            }
                        })
                        .collect();
                    let t = Instant::now();
                    if keepalive {
                        match client.request_group(&paths) {
                            Ok(responses) => {
                                let us = t.elapsed().as_micros() as u64 / n as u64;
                                for (status, body) in responses {
                                    samples.push(Sample {
                                        us,
                                        status,
                                        cached: body.contains("\"cached\":true")
                                            && !body.contains("\"cached\":false"),
                                    });
                                }
                            }
                            Err(_) => {
                                let us = t.elapsed().as_micros() as u64 / n as u64;
                                for _ in 0..n {
                                    samples.push(Sample { us, status: 0, cached: false });
                                }
                            }
                        }
                    } else {
                        match fetch(addr, &paths[0]) {
                            Ok((status, body)) => samples.push(Sample {
                                us: t.elapsed().as_micros() as u64,
                                status,
                                cached: body.contains("\"cached\":true")
                                    && !body.contains("\"cached\":false"),
                            }),
                            Err(_) => samples.push(Sample {
                                us: t.elapsed().as_micros() as u64,
                                status: 0,
                                cached: false,
                            }),
                        }
                        client.connections += 1; // one TCP connect per request
                    }
                }
            })
        })
        .collect();
    let mut samples = Vec::with_capacity(requests);
    let mut connections = 0usize;
    for c in clients {
        let (s, conns) = c.join().map_err(|_| "client thread panicked")??;
        samples.extend(s);
        connections += conns;
    }
    Ok(PassResult { samples, elapsed_ms: t0.elapsed().as_secs_f64() * 1e3, connections })
}

fn percentile(sorted_us: &[u64], pct: usize) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let i = (sorted_us.len() * pct / 100).min(sorted_us.len() - 1);
    sorted_us[i]
}

/// Renders one pass's report block.
fn pass_block(name: &str, pass: &PassResult, extra: &str) -> String {
    let mut us: Vec<u64> = pass.samples.iter().map(|s| s.us).collect();
    us.sort_unstable();
    let ok = pass.samples.iter().filter(|s| s.status == 200).count();
    let e4 = pass.samples.iter().filter(|s| (400..500).contains(&s.status)).count();
    let e5 = pass.samples.iter().filter(|s| s.status >= 500).count();
    let tr = pass.samples.iter().filter(|s| s.status == 0).count();
    let reuse = pass.samples.len() as f64 / pass.connections.max(1) as f64;
    format!(
        "    \"{name}\": {{ \"requests\": {n}, \"elapsed_ms\": {ms:.3}, \"qps\": {qps:.1}, \
         \"connections\": {conns}, \"requests_per_conn\": {reuse:.1}, \
         \"latency\": {{ \"p50_us\": {p50}, \"p90_us\": {p90}, \"p99_us\": {p99} }}, \
         \"status\": {{ \"ok_200\": {ok}, \"err_4xx\": {e4}, \"err_5xx\": {e5}, \
         \"transport\": {tr} }}{extra} }}",
        n = pass.samples.len(),
        ms = pass.elapsed_ms,
        qps = pass.qps(),
        conns = pass.connections,
        p50 = percentile(&us, 50),
        p90 = percentile(&us, 90),
        p99 = percentile(&us, 99),
    )
}

/// The router scaling benchmark (`bench serve --router N`): the same
/// closed-loop batch workload thrown at one single-process daemon and
/// at an N-shard router fleet, every process capped at one worker
/// thread so the only lever is the router spreading lane blocks across
/// shard processes. Batches are sized to several 64-lane blocks per
/// shard (960 origins for 3 shards): the single process sweeps all
/// ~15 blocks sequentially, each shard sweeps ~5 — in parallel,
/// because the scatter writes every sub-request before reading any
/// response — so throughput should approach N×. Multiple blocks per
/// shard matter: they amortise the fixed per-sub-request cost (parse,
/// serialize, socket write) under propagation compute, and shrink the
/// relative imbalance the hash split introduces. The cache is
/// deliberately tiny relative to the origin pool — a cache-served
/// answer would measure the allocator, not the sweep.
///
/// The report records the host's core count: on a box with fewer
/// cores than `shards + 1` the shard processes time-slice one another
/// and the ratio degenerates to ~1× or below by construction — such a
/// result says nothing about the router. The CI gate checks the ratio
/// only where the fleet can actually run in parallel.
///
/// One closed-loop client and no background prober, deliberately: a
/// serve worker is bound to its connection for the connection's whole
/// life (idle parking included), so a 1-worker shard can serve exactly
/// one upstream connection. One client keeps the router at one pooled
/// connection per shard; more would starve behind the parked worker
/// and measure the shard's idle timeout instead of the sweep.
fn run_router(
    shards: u32,
    ases: usize,
    seed: u64,
    conc: usize,
    requests: usize,
    pool: usize,
    batch: usize,
    out: &str,
) -> Result<(), String> {
    use flatnet_router::{Router, RouterConfig};

    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    println!(
        "# flatnet bench serve --router {shards} — {ases} ASes (seed {seed}), \
         {conc} clients, {requests} batch requests/pass, {batch} origins/batch"
    );
    let net = generate(&NetGenConfig::paper_2020(ases, seed));
    let tiers = net.tiers_for(&net.truth);
    let origins: Vec<u32> = {
        let n = net.truth.len();
        let step = (n / pool.min(n)).max(1);
        net.truth.asns().step_by(step).take(pool).map(|a| a.0).collect()
    };
    let start_one = |shard: Option<(u32, u32)>| {
        Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            cache_cap: 64,
            shard,
            source: TopologySource::Preloaded { graph: net.truth.clone(), tiers: tiers.clone() },
            ..ServeConfig::default()
        })
    };

    let origins = Arc::new(origins);
    let single = start_one(None)?;
    println!("pass 1/2: single process (1 worker) ...");
    let single_pass =
        run_pass(single.addr(), conc, requests, &origins, &Mode::Batch { size: batch })?;
    single.shutdown();

    let fleet: Vec<Server> =
        (0..shards).map(|i| start_one(Some((i, shards)))).collect::<Result<_, _>>()?;
    let router = Router::start(RouterConfig {
        addr: "127.0.0.1:0".into(),
        shard_addrs: fleet.iter().map(|s| s.addr().to_string()).collect(),
        probe_interval_ms: 0,
        ..RouterConfig::default()
    })
    .map_err(|e| format!("router failed to start: {e}"))?;
    println!("pass 2/2: router over {shards} shards (1 worker each) ...");
    let router_pass =
        run_pass(router.addr(), conc, requests, &origins, &Mode::Batch { size: batch })?;
    router.shutdown();
    for s in fleet {
        s.shutdown();
    }

    let single_qps = single_pass.qps() * batch as f64;
    let router_qps = router_pass.qps() * batch as f64;
    let ratio = router_qps / (single_qps).max(1e-9);
    let extra = format!(", \"origins_per_request\": {batch}");
    let report = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"flatnet-bench-router/v1\",\n",
            "  \"ases\": {ases},\n",
            "  \"seed\": {seed},\n",
            "  \"shards\": {shards},\n",
            "  \"cores\": {cores},\n",
            "  \"concurrency\": {conc},\n",
            "  \"pool\": {pool},\n",
            "  \"batch\": {batch},\n",
            "  \"passes\": {{\n{single_block},\n{router_block}\n  }},\n",
            "  \"single_origin_qps\": {single_qps:.1},\n",
            "  \"router_origin_qps\": {router_qps:.1},\n",
            "  \"router_vs_single\": {ratio:.2}\n",
            "}}\n",
        ),
        ases = ases,
        seed = seed,
        shards = shards,
        cores = cores,
        conc = conc,
        pool = pool,
        batch = batch,
        single_block = pass_block("single", &single_pass, &extra),
        router_block = pass_block("router", &router_pass, &extra),
        single_qps = single_qps,
        router_qps = router_qps,
        ratio = ratio,
    );
    std::fs::write(out, &report).map_err(|e| format!("cannot write {out}: {e}"))?;

    println!("single: {:.0} batch qps = {single_qps:.0} origins/s", single_pass.qps());
    println!(
        "router: {:.0} batch qps = {router_qps:.0} origins/s — {ratio:.2}x single \
         ({shards} shards, {cores} cores)",
        router_pass.qps(),
    );
    if cores <= shards as usize {
        println!(
            "note: only {cores} cores for {shards} shard processes + a client — the fleet \
             is time-sliced, not parallel; the ratio is not meaningful on this host"
        );
    }
    println!("report: {out}");
    Ok(())
}

fn flag_value<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    let v = value.ok_or_else(|| format!("{flag} requires a value"))?;
    v.parse().map_err(|e| format!("bad value {v:?} for {flag}: {e}"))
}

/// Runs the serve load benchmark with CLI-style `args` (the `bench
/// serve` subcommand). Writes the JSON report and prints a summary.
pub fn run(args: &[String]) -> Result<(), String> {
    let mut ases: Option<usize> = None;
    let mut seed = 2020u64;
    let mut conc: Option<usize> = None;
    let mut requests: Option<usize> = None;
    let mut pool: Option<usize> = None;
    let mut workers = 0usize;
    let mut pipeline = 1usize;
    let mut batch: Option<usize> = None;
    let mut router: u32 = 0;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ases" => ases = Some(flag_value("--ases", it.next())?),
            "--seed" => seed = flag_value("--seed", it.next())?,
            "--conc" => conc = Some(flag_value("--conc", it.next())?),
            "--requests" => requests = Some(flag_value("--requests", it.next())?),
            "--pool" => pool = Some(flag_value("--pool", it.next())?),
            "--workers" => workers = flag_value("--workers", it.next())?,
            "--pipeline" => pipeline = flag_value("--pipeline", it.next())?,
            "--batch" => batch = Some(flag_value("--batch", it.next())?),
            "--router" => router = flag_value("--router", it.next())?,
            "--out" => out = Some(it.next().ok_or("--out requires a file path")?.clone()),
            "--help" | "-h" => {
                println!("usage: flatnet bench serve [--ases N] [--seed S] [--conc C]");
                println!("                           [--requests R] [--pool P] [--workers W]");
                println!("                           [--pipeline D] [--batch B] [--out PATH]");
                println!("                           [--router N]");
                println!("--ases N:     topology size (default 4000; 3000 with --router)");
                println!("--seed S:     generator seed (default 2020)");
                println!("--conc C:     concurrent closed-loop clients (default 8; 1 with");
                println!("              --router — a 1-worker shard serves one connection)");
                println!("--requests R: requests per pass across all clients (default 4000;");
                println!("              batch requests, default 24, with --router)");
                println!("--pool P:     distinct origins cycled through (default 64; 5 batches");
                println!("              worth with --router)");
                println!("--workers W:  server worker threads, 0 = all cores (default 0)");
                println!("--pipeline D: pipelined requests in flight on the keepalive pass (default 1)");
                println!("--batch B:    origins per batch request, 0 = pool size (default 0;");
                println!("              5 x 64 lanes x shards, capped at 1024, with --router)");
                println!("--router N:   compare an N-shard router fleet against one single-worker");
                println!("              process on the batch workload; writes a");
                println!("              flatnet-bench-router/v1 report (default BENCH_router.json)");
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }
    if router > 0 {
        // Router mode: batches span several 64-lane blocks per shard so
        // propagation compute dominates the fixed per-sub-request cost,
        // and the pool cycles disjoint batches so the tiny shard caches
        // never serve the answer.
        let batch = match batch {
            Some(0) | None => {
                (64 * 5 * router as usize).min(flatnet_serve::engine::MAX_BATCH_ORIGINS)
            }
            Some(b) => b,
        };
        let conc = conc.unwrap_or(1);
        let requests = requests.unwrap_or(24);
        let pool = pool.unwrap_or(batch * 5);
        if conc == 0 || requests == 0 || pool == 0 || batch == 0 {
            return Err("--conc, --requests, --pool, and --batch must be positive".into());
        }
        return run_router(
            router,
            ases.unwrap_or(3000),
            seed,
            conc,
            requests,
            pool,
            batch,
            out.as_deref().unwrap_or("BENCH_router.json"),
        );
    }
    let ases = ases.unwrap_or(4000);
    let conc = conc.unwrap_or(8);
    let requests = requests.unwrap_or(4000);
    let pool = pool.unwrap_or(64);
    let out = out.unwrap_or_else(|| "BENCH_serve.json".to_string());
    if conc == 0 || requests == 0 || pool == 0 || pipeline == 0 {
        return Err("--conc, --requests, --pool, and --pipeline must be positive".into());
    }
    let batch = match batch {
        Some(0) | None => pool,
        Some(b) => b,
    };

    // Generate once and hand the graph to the server pre-built, so the
    // bench process does not pay for generation twice.
    println!("# flatnet bench serve — {ases} ASes (seed {seed}), {conc} clients, {requests} requests/pass");
    let net = generate(&NetGenConfig::paper_2020(ases, seed));
    let tiers = net.tiers_for(&net.truth);
    let origins: Vec<u32> = {
        let n = net.truth.len();
        let step = (n / pool.min(n)).max(1);
        net.truth.asns().step_by(step).take(pool).map(|a| a.0).collect()
    };
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        source: TopologySource::Preloaded { graph: net.truth.clone(), tiers },
        ..ServeConfig::default()
    })?;
    let addr = server.addr();

    // Warm pass: every origin once, so steady state measures the cache.
    let t_warm = Instant::now();
    for &o in &origins {
        let (status, _) = fetch(addr, &format!("/v1/reachability?origin={o}"))?;
        if status != 200 {
            server.shutdown();
            return Err(format!("warmup query for AS{o} failed with {status}"));
        }
    }
    let warm_ms = t_warm.elapsed().as_secs_f64() * 1e3;

    // The server runs in-process, so the global obs registry holds its
    // per-stage histograms; the delta across the load passes isolates
    // the stage breakdown to exactly the measured requests.
    let obs_before = flatnet_obs::snapshot();

    let origins = Arc::new(origins);
    println!("pass 1/3: close-per-request ...");
    let close = run_pass(addr, conc, requests, &origins, &Mode::Close)?;
    println!("pass 2/3: keep-alive (pipeline {pipeline}) ...");
    let keepalive =
        run_pass(addr, conc, requests, &origins, &Mode::KeepAlive { pipeline })?;
    println!("pass 3/3: batch ({batch} origins/request) ...");
    let batch_requests = (requests / batch).max(conc);
    let batch_pass =
        run_pass(addr, conc, batch_requests, &origins, &Mode::Batch { size: batch })?;
    let obs_delta = flatnet_obs::snapshot().delta_since(&obs_before);
    server.shutdown();

    // Server-side per-stage percentiles over the load passes, from the
    // `serve.stage_us{stage="..."}` histograms the trace layer feeds.
    let stage_block = ["queue_wait", "keepalive_idle", "cache_probe", "propagate", "write"]
        .iter()
        .map(|name| {
            let key = format!("serve.stage_us{{stage=\"{name}\"}}");
            let (p50, p90, p99) = obs_delta
                .histograms
                .get(&key)
                .map(|h| {
                    let pct = |p: f64| h.percentile_us(p).unwrap_or(0);
                    (pct(50.0), pct(90.0), pct(99.0))
                })
                .unwrap_or((0, 0, 0));
            format!("\"{name}\": {{ \"p50_us\": {p50}, \"p90_us\": {p90}, \"p99_us\": {p99} }}")
        })
        .collect::<Vec<_>>()
        .join(", ");

    // ---- Aggregate: the hit/miss latency split from the single-query
    // passes (batch bodies mix hits and misses per response). ----
    let singles: Vec<&Sample> = close.samples.iter().chain(&keepalive.samples).collect();
    let mut hit_us: Vec<u64> = singles.iter().filter(|s| s.cached).map(|s| s.us).collect();
    let mut miss_us: Vec<u64> =
        singles.iter().filter(|s| !s.cached && s.status == 200).map(|s| s.us).collect();
    hit_us.sort_unstable();
    miss_us.sort_unstable();
    let all: Vec<&Sample> =
        singles.iter().copied().chain(&batch_pass.samples).collect();
    let err_5xx = all.iter().filter(|s| s.status >= 500).count();
    let transport = all.iter().filter(|s| s.status == 0).count();
    let ratio = keepalive.qps() / close.qps().max(1e-9);
    // Batch throughput in origins (answers) per second, the comparable
    // unit against the single-query passes.
    let origin_qps = batch_pass.qps() * batch as f64;

    let batch_extra = format!(
        ", \"origins_per_request\": {batch}, \"origin_qps\": {origin_qps:.1}"
    );
    let report = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"flatnet-bench-serve/v1\",\n",
            "  \"ases\": {ases},\n",
            "  \"seed\": {seed},\n",
            "  \"concurrency\": {conc},\n",
            "  \"pool\": {pool},\n",
            "  \"pipeline\": {pipeline},\n",
            "  \"warmup_ms\": {warm_ms:.3},\n",
            "  \"passes\": {{\n{close_block},\n{keepalive_block},\n{batch_block}\n  }},\n",
            "  \"keepalive_vs_close\": {ratio:.2},\n",
            "  \"stages\": {{ {stages} }},\n",
            "  \"cache_hit\": {{ \"count\": {hitn}, \"p50_us\": {hit50}, \"p99_us\": {hit99} }},\n",
            "  \"cache_miss\": {{ \"count\": {missn}, \"p50_us\": {miss50}, \"p99_us\": {miss99} }},\n",
            "  \"status\": {{ \"err_5xx\": {e5}, \"transport\": {tr} }}\n",
            "}}\n",
        ),
        ases = ases,
        seed = seed,
        conc = conc,
        pool = pool,
        pipeline = pipeline,
        warm_ms = warm_ms,
        close_block = pass_block("close", &close, ""),
        keepalive_block = pass_block("keepalive", &keepalive, ""),
        batch_block = pass_block("batch", &batch_pass, &batch_extra),
        ratio = ratio,
        stages = stage_block,
        hitn = hit_us.len(),
        hit50 = percentile(&hit_us, 50),
        hit99 = percentile(&hit_us, 99),
        missn = miss_us.len(),
        miss50 = percentile(&miss_us, 50),
        miss99 = percentile(&miss_us, 99),
        e5 = err_5xx,
        tr = transport,
    );
    std::fs::write(&out, &report).map_err(|e| format!("cannot write {out}: {e}"))?;

    println!(
        "close:     {:.0} qps over {} connections",
        close.qps(),
        close.connections
    );
    println!(
        "keepalive: {:.0} qps over {} connections ({:.0} requests/conn) — {ratio:.2}x close",
        keepalive.qps(),
        keepalive.connections,
        keepalive.samples.len() as f64 / keepalive.connections.max(1) as f64,
    );
    println!(
        "batch:     {:.0} batch qps = {origin_qps:.0} origins/s ({batch} origins/request)",
        batch_pass.qps(),
    );
    println!(
        "cache: {} hits (p50 {} us) / {} misses (p50 {} us); {} 5xx, {} transport",
        hit_us.len(),
        percentile(&hit_us, 50),
        miss_us.len(),
        percentile(&miss_us, 50),
        err_5xx,
        transport
    );
    println!("report: {out}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_bench_run_writes_schema_tagged_report() {
        let dir = std::env::temp_dir().join("flatnet_servebench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_serve.json");
        let args: Vec<String> = [
            "--ases", "300", "--seed", "3", "--conc", "2", "--requests", "60",
            "--pool", "8", "--workers", "2", "--pipeline", "2",
            "--out", out.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).expect("bench run");
        let report = std::fs::read_to_string(&out).unwrap();
        assert!(report.contains("\"schema\": \"flatnet-bench-serve/v1\""));
        for pass in ["\"close\":", "\"keepalive\":", "\"batch\":"] {
            assert!(report.contains(pass), "missing pass {pass}:\n{report}");
        }
        assert!(report.contains("\"keepalive_vs_close\":"), "{report}");
        assert!(report.contains("\"requests_per_conn\":"), "{report}");
        assert!(report.contains("\"origin_qps\":"), "{report}");
        assert!(report.contains("\"cache_hit\""));
        assert!(report.contains("\"err_5xx\": 0"), "5xx under closed-loop load:\n{report}");
        // The pool is warmed, so the close and keepalive passes are all
        // hits: 60 requests each, all 200.
        assert_eq!(report.matches("\"ok_200\": 60").count(), 2, "{report}");
        // The per-stage breakdown comes from the in-process obs delta.
        for stage in ["queue_wait", "keepalive_idle", "cache_probe", "propagate", "write"] {
            assert!(report.contains(&format!("\"{stage}\": {{ \"p50_us\": ")), "{report}");
        }
    }

    #[test]
    fn rejects_unknown_flags_and_zero_values() {
        assert!(run(&["--bogus".to_string()]).is_err());
        assert!(run(&["--conc".to_string(), "0".to_string()]).is_err());
    }

    #[test]
    fn router_bench_writes_schema_tagged_report() {
        let dir = std::env::temp_dir().join("flatnet_routerbench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_router.json");
        // Tiny on purpose: this pins the report contract, not the
        // ratio — CI measures that at full size where it is meaningful.
        let args: Vec<String> = [
            "--router", "2", "--ases", "300", "--seed", "3", "--conc", "1",
            "--requests", "6", "--batch", "16", "--pool", "64",
            "--out", out.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).expect("router bench run");
        let report = std::fs::read_to_string(&out).unwrap();
        assert!(report.contains("\"schema\": \"flatnet-bench-router/v1\""), "{report}");
        assert!(report.contains("\"shards\": 2"), "{report}");
        assert!(report.contains("\"cores\": "), "{report}");
        for field in
            ["\"single\":", "\"router\":", "\"router_vs_single\":", "\"router_origin_qps\":"]
        {
            assert!(report.contains(field), "missing {field}:\n{report}");
        }
        // Both passes answered everything: 6 batch requests each, no
        // 5xx and no transport failures.
        assert_eq!(report.matches("\"ok_200\": 6").count(), 2, "{report}");
        assert!(report.contains("\"err_5xx\": 0"), "{report}");
    }
}
