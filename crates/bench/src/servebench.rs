//! `flatnet bench serve` — a closed-loop load generator for the
//! `flatnet-serve` daemon.
//!
//! Starts an in-process server on a loopback port, warms the origin
//! pool (so the cache holds every origin once), then hammers it from
//! `--conc` client threads, each issuing requests back-to-back
//! (closed-loop: a new request leaves only when the previous response
//! arrived, so the offered load adapts to the server instead of
//! overrunning it). Latencies are split by cache hit/miss using the
//! `"cached":` marker in the response body.
//!
//! The report (schema `flatnet-bench-serve/v1`) feeds the CI acceptance
//! gate: cache-hit p50 under 1 ms and zero 5xx at the configured
//! concurrency.

use flatnet_netgen::{generate, NetGenConfig};
use flatnet_serve::{ServeConfig, Server, TopologySource};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One request's outcome as seen by a client thread.
struct Sample {
    us: u64,
    status: u16,
    cached: bool,
}

fn fetch(addr: SocketAddr, path: &str) -> Result<(u16, String), String> {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(30))).ok();
    s.set_write_timeout(Some(Duration::from_secs(30))).ok();
    s.set_nodelay(true).ok();
    let req = format!("GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n");
    s.write_all(req.as_bytes()).map_err(|e| format!("write: {e}"))?;
    s.shutdown(Shutdown::Write).ok();
    let mut raw = String::new();
    s.read_to_string(&mut raw).map_err(|e| format!("read: {e}"))?;
    let status: u16 = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split(' ').next())
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| format!("bad response: {raw:?}"))?;
    Ok((status, raw))
}

fn percentile(sorted_us: &[u64], pct: usize) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let i = (sorted_us.len() * pct / 100).min(sorted_us.len() - 1);
    sorted_us[i]
}

fn flag_value<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    let v = value.ok_or_else(|| format!("{flag} requires a value"))?;
    v.parse().map_err(|e| format!("bad value {v:?} for {flag}: {e}"))
}

/// Runs the serve load benchmark with CLI-style `args` (the `bench
/// serve` subcommand). Writes the JSON report and prints a summary.
pub fn run(args: &[String]) -> Result<(), String> {
    let mut ases = 4000usize;
    let mut seed = 2020u64;
    let mut conc = 8usize;
    let mut requests = 4000usize;
    let mut pool = 64usize;
    let mut workers = 0usize;
    let mut out = String::from("BENCH_serve.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ases" => ases = flag_value("--ases", it.next())?,
            "--seed" => seed = flag_value("--seed", it.next())?,
            "--conc" => conc = flag_value("--conc", it.next())?,
            "--requests" => requests = flag_value("--requests", it.next())?,
            "--pool" => pool = flag_value("--pool", it.next())?,
            "--workers" => workers = flag_value("--workers", it.next())?,
            "--out" => out = it.next().ok_or("--out requires a file path")?.clone(),
            "--help" | "-h" => {
                println!("usage: flatnet bench serve [--ases N] [--seed S] [--conc C]");
                println!("                           [--requests R] [--pool P] [--workers W]");
                println!("                           [--out PATH]");
                println!("--ases N:     topology size (default 4000)");
                println!("--seed S:     generator seed (default 2020)");
                println!("--conc C:     concurrent closed-loop clients (default 8)");
                println!("--requests R: total requests across all clients (default 4000)");
                println!("--pool P:     distinct origins cycled through (default 64)");
                println!("--workers W:  server worker threads, 0 = all cores (default 0)");
                println!("--out PATH:   JSON report path (default BENCH_serve.json)");
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }
    if conc == 0 || requests == 0 || pool == 0 {
        return Err("--conc, --requests, and --pool must be positive".into());
    }

    // Generate once and hand the graph to the server pre-built, so the
    // bench process does not pay for generation twice.
    println!("# flatnet bench serve — {ases} ASes (seed {seed}), {conc} clients, {requests} requests");
    let net = generate(&NetGenConfig::paper_2020(ases, seed));
    let tiers = net.tiers_for(&net.truth);
    let origins: Vec<u32> = {
        let n = net.truth.len();
        let step = (n / pool.min(n)).max(1);
        net.truth.asns().step_by(step).take(pool).map(|a| a.0).collect()
    };
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        source: TopologySource::Preloaded { graph: net.truth.clone(), tiers },
        ..ServeConfig::default()
    })?;
    let addr = server.addr();

    // Warm pass: every origin once, so steady state measures the cache.
    let t_warm = Instant::now();
    for &o in &origins {
        let (status, _) = fetch(addr, &format!("/v1/reachability?origin={o}"))?;
        if status != 200 {
            server.shutdown();
            return Err(format!("warmup query for AS{o} failed with {status}"));
        }
    }
    let warm_ms = t_warm.elapsed().as_secs_f64() * 1e3;

    // The server runs in-process, so the global obs registry holds its
    // per-stage histograms; the delta across the load pass isolates the
    // stage breakdown to exactly the measured requests.
    let obs_before = flatnet_obs::snapshot();

    // Load pass: `conc` closed-loop clients pull request indices from a
    // shared counter and cycle the origin pool.
    let next = Arc::new(AtomicUsize::new(0));
    let origins = Arc::new(origins);
    let t0 = Instant::now();
    let clients: Vec<_> = (0..conc)
        .map(|_| {
            let next = Arc::clone(&next);
            let origins = Arc::clone(&origins);
            std::thread::spawn(move || -> Vec<Sample> {
                let mut samples = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= requests {
                        return samples;
                    }
                    let o = origins[i % origins.len()];
                    let t = Instant::now();
                    match fetch(addr, &format!("/v1/reachability?origin={o}")) {
                        Ok((status, body)) => samples.push(Sample {
                            us: t.elapsed().as_micros() as u64,
                            status,
                            cached: body.contains("\"cached\":true"),
                        }),
                        Err(_) => samples.push(Sample {
                            us: t.elapsed().as_micros() as u64,
                            status: 0,
                            cached: false,
                        }),
                    }
                }
            })
        })
        .collect();
    let mut samples = Vec::with_capacity(requests);
    for c in clients {
        samples.extend(c.join().map_err(|_| "client thread panicked")?);
    }
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    let obs_delta = flatnet_obs::snapshot().delta_since(&obs_before);
    server.shutdown();

    // Server-side per-stage percentiles over the load pass, from the
    // `serve.stage_us{stage="..."}` histograms the trace layer feeds.
    let stage_block = ["queue_wait", "cache_probe", "propagate", "write"]
        .iter()
        .map(|name| {
            let key = format!("serve.stage_us{{stage=\"{name}\"}}");
            let (p50, p90, p99) = obs_delta
                .histograms
                .get(&key)
                .map(|h| {
                    let pct = |p: f64| h.percentile_us(p).unwrap_or(0);
                    (pct(50.0), pct(90.0), pct(99.0))
                })
                .unwrap_or((0, 0, 0));
            format!("\"{name}\": {{ \"p50_us\": {p50}, \"p90_us\": {p90}, \"p99_us\": {p99} }}")
        })
        .collect::<Vec<_>>()
        .join(", ");

    // ---- Aggregate. ----
    let mut all_us: Vec<u64> = samples.iter().map(|s| s.us).collect();
    let mut hit_us: Vec<u64> = samples.iter().filter(|s| s.cached).map(|s| s.us).collect();
    let mut miss_us: Vec<u64> =
        samples.iter().filter(|s| !s.cached && s.status == 200).map(|s| s.us).collect();
    all_us.sort_unstable();
    hit_us.sort_unstable();
    miss_us.sort_unstable();
    let ok_200 = samples.iter().filter(|s| s.status == 200).count();
    let err_4xx = samples.iter().filter(|s| (400..500).contains(&s.status)).count();
    let err_5xx = samples.iter().filter(|s| s.status >= 500).count();
    let transport = samples.iter().filter(|s| s.status == 0).count();
    let qps = samples.len() as f64 / (elapsed_ms / 1e3).max(1e-9);

    let report = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"flatnet-bench-serve/v1\",\n",
            "  \"ases\": {ases},\n",
            "  \"seed\": {seed},\n",
            "  \"concurrency\": {conc},\n",
            "  \"requests\": {requests},\n",
            "  \"pool\": {pool},\n",
            "  \"warmup_ms\": {warm_ms:.3},\n",
            "  \"elapsed_ms\": {elapsed_ms:.3},\n",
            "  \"qps\": {qps:.1},\n",
            "  \"latency\": {{ \"p50_us\": {p50}, \"p90_us\": {p90}, \"p99_us\": {p99} }},\n",
            "  \"stages\": {{ {stages} }},\n",
            "  \"cache_hit\": {{ \"count\": {hitn}, \"p50_us\": {hit50}, \"p99_us\": {hit99} }},\n",
            "  \"cache_miss\": {{ \"count\": {missn}, \"p50_us\": {miss50}, \"p99_us\": {miss99} }},\n",
            "  \"status\": {{ \"ok_200\": {ok}, \"err_4xx\": {e4}, \"err_5xx\": {e5}, \"transport\": {tr} }}\n",
            "}}\n",
        ),
        ases = ases,
        seed = seed,
        conc = conc,
        requests = samples.len(),
        pool = pool,
        warm_ms = warm_ms,
        elapsed_ms = elapsed_ms,
        qps = qps,
        p50 = percentile(&all_us, 50),
        p90 = percentile(&all_us, 90),
        p99 = percentile(&all_us, 99),
        stages = stage_block,
        hitn = hit_us.len(),
        hit50 = percentile(&hit_us, 50),
        hit99 = percentile(&hit_us, 99),
        missn = miss_us.len(),
        miss50 = percentile(&miss_us, 50),
        miss99 = percentile(&miss_us, 99),
        ok = ok_200,
        e4 = err_4xx,
        e5 = err_5xx,
        tr = transport,
    );
    std::fs::write(&out, &report).map_err(|e| format!("cannot write {out}: {e}"))?;

    println!(
        "served {} requests in {:.0} ms ({:.0} qps): p50 {} us, p99 {} us",
        samples.len(),
        elapsed_ms,
        qps,
        percentile(&all_us, 50),
        percentile(&all_us, 99)
    );
    println!(
        "cache: {} hits (p50 {} us) / {} misses (p50 {} us); status: {} ok, {} 4xx, {} 5xx, {} transport",
        hit_us.len(),
        percentile(&hit_us, 50),
        miss_us.len(),
        percentile(&miss_us, 50),
        ok_200,
        err_4xx,
        err_5xx,
        transport
    );
    println!("report: {out}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_bench_run_writes_schema_tagged_report() {
        let dir = std::env::temp_dir().join("flatnet_servebench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_serve.json");
        let args: Vec<String> = [
            "--ases", "300", "--seed", "3", "--conc", "2", "--requests", "60",
            "--pool", "8", "--workers", "2",
            "--out", out.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).expect("bench run");
        let report = std::fs::read_to_string(&out).unwrap();
        assert!(report.contains("\"schema\": \"flatnet-bench-serve/v1\""));
        assert!(report.contains("\"cache_hit\""));
        assert!(report.contains("\"err_5xx\": 0"), "5xx under closed-loop load:\n{report}");
        // The pool is warmed, so the load pass should be all hits.
        assert!(report.contains("\"ok_200\": 60"), "{report}");
        // The per-stage breakdown comes from the in-process obs delta.
        for stage in ["queue_wait", "cache_probe", "propagate", "write"] {
            assert!(report.contains(&format!("\"{stage}\": {{ \"p50_us\": ")), "{report}");
        }
    }

    #[test]
    fn rejects_unknown_flags_and_zero_values() {
        assert!(run(&["--bogus".to_string()]).is_err());
        assert!(run(&["--conc".to_string(), "0".to_string()]).is_err());
    }
}
