//! Fig. 13: path-length splits per cloud, three weightings.

use criterion::{criterion_group, criterion_main, Criterion};
use flatnet_core::pathlen::path_length_profile;
use flatnet_netgen::{generate, NetGenConfig};

fn bench_fig13(c: &mut Criterion) {
    let net = generate(&NetGenConfig::paper_2020(1500, 1));
    let users = net.user_weights();
    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    for cloud in net.cloud_providers() {
        group.bench_function(format!("pathlen_{}", cloud.spec.name), |b| {
            b.iter(|| path_length_profile(&net.truth, cloud.asn, &users))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
