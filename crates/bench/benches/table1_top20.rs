//! Table 1: whole-Internet hierarchy-free reachability + ranking.

use criterion::{criterion_group, criterion_main, Criterion};
use flatnet_core::reachability::{hierarchy_free_all, rank_by_hierarchy_free};
use flatnet_netgen::{generate, NetGenConfig};

fn bench_table1(c: &mut Criterion) {
    let net = generate(&NetGenConfig::paper_2020(800, 1));
    let tiers = net.tiers_for(&net.truth);
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("hierarchy_free_all_800", |b| {
        b.iter(|| hierarchy_free_all(&net.truth, &tiers))
    });
    let hfr = hierarchy_free_all(&net.truth, &tiers);
    group.bench_function("rank_by_hierarchy_free", |b| {
        b.iter(|| rank_by_hierarchy_free(&net.truth, &hfr))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
