//! Fig. 2: the three-level reachability profile for the focus networks.

use criterion::{criterion_group, criterion_main, Criterion};
use flatnet_core::reachability::reachability_profile;
use flatnet_netgen::{generate, NetGenConfig};

fn bench_fig2(c: &mut Criterion) {
    let net = generate(&NetGenConfig::paper_2020(1200, 1));
    let tiers = net.tiers_for(&net.truth);
    let focus: Vec<_> = net
        .cloud_providers()
        .map(|cl| cl.asn)
        .chain(net.tier1.iter().copied())
        .chain(net.tier2.iter().copied())
        .collect();
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("reachability_profile_44_networks", |b| {
        b.iter(|| reachability_profile(&net.truth, &tiers, &focus))
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
