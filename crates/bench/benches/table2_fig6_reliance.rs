//! Table 2 / Fig. 6: hierarchy-free reliance per cloud + histogram.

use criterion::{criterion_group, criterion_main, Criterion};
use flatnet_core::reliance_exp::reliance_under_hierarchy_free;
use flatnet_netgen::{generate, NetGenConfig};

fn bench_table2(c: &mut Criterion) {
    let net = generate(&NetGenConfig::paper_2020(1500, 1));
    let tiers = net.tiers_for(&net.truth);
    let mut group = c.benchmark_group("table2_fig6");
    group.sample_size(10);
    group.bench_function("reliance_hierarchy_free_google", |b| {
        b.iter(|| reliance_under_hierarchy_free(&net.truth, &tiers, net.clouds[0].asn))
    });
    let prof = reliance_under_hierarchy_free(&net.truth, &tiers, net.clouds[0].asn).unwrap();
    group.bench_function("fig6_histogram", |b| b.iter(|| prof.histogram(25.0)));
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
