//! Fig. 10: leak resilience across the 2015 and 2020 epochs.

use criterion::{criterion_group, criterion_main, Criterion};
use flatnet_core::leaks::{leak_cdf, Announce, Locking};
use flatnet_netgen::{generate, NetGenConfig};

fn bench_fig10(c: &mut Criterion) {
    let net15 = generate(&NetGenConfig::paper_2015(800, 1));
    let net20 = generate(&NetGenConfig::paper_2020(800, 1));
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    for (name, net) in [("2015", &net15), ("2020", &net20)] {
        let tiers = net.tiers_for(&net.truth);
        let google = net.clouds[0].asn;
        group.bench_function(format!("google_leaks_{name}"), |b| {
            b.iter(|| {
                leak_cdf(&net.truth, &tiers, google, Announce::ToAll, Locking::None, 25, 7, None)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
