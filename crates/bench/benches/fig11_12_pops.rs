//! Figs. 11/12: PoP deployment split and population coverage.

use criterion::{criterion_group, criterion_main, Criterion};
use flatnet_core::pops_exp::{continent_coverage, coverage_row, deployment_split};
use flatnet_geo::pops::Footprint;
use flatnet_netgen::{generate, NetGenConfig};

fn bench_pops(c: &mut Criterion) {
    let net = generate(&NetGenConfig::paper_2020(800, 1));
    let grid = &net.popgrid;
    let clouds: Vec<&Footprint> = net
        .cloud_providers()
        .map(|cl| &net.geo.footprints[&cl.asn.0])
        .collect();
    let transits: Vec<&Footprint> = net.tier1.iter().map(|a| &net.geo.footprints[&a.0]).collect();
    let mut group = c.benchmark_group("fig11_12");
    group.sample_size(10);
    group.bench_function("deployment_split", |b| b.iter(|| deployment_split(&clouds, &transits)));
    group.bench_function("coverage_row_google", |b| b.iter(|| coverage_row(grid, clouds[0])));
    let pts = clouds[0].points();
    group.bench_function("continent_coverage", |b| b.iter(|| continent_coverage(grid, &pts)));
    group.finish();
}

criterion_group!(benches, bench_pops);
criterion_main!(benches);
