//! §4.1/§5: the traceroute campaign and neighbor-inference pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use flatnet_netgen::{generate, NetGenConfig};
use flatnet_tracesim::{infer_neighbors, run_campaign, CampaignOptions, Methodology};

fn bench_inference(c: &mut Criterion) {
    let mut cfg = NetGenConfig::tiny(1);
    cfg.n_ases = 300;
    let net = generate(&cfg);
    let opts = CampaignOptions { dest_sample: 0.5, max_vps: 4, ..Default::default() };
    let mut group = c.benchmark_group("inference");
    group.sample_size(10);
    group.bench_function("campaign_300ases_4vps", |b| b.iter(|| run_campaign(&net, &opts)));
    let campaign = run_campaign(&net, &opts);
    let google = net.clouds[0].asn;
    group.bench_function("infer_neighbors_final", |b| {
        b.iter(|| {
            infer_neighbors(
                campaign.for_cloud(google),
                &net.addressing.resolver,
                &Methodology::final_methodology(),
                google,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
