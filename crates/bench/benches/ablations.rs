//! Ablation benches: the erratum semantics and the topology views that
//! DESIGN.md's experiment index calls out.

use criterion::{criterion_group, criterion_main, Criterion};
use flatnet_bgpsim::{simulate_leak, LeakScenario, LockingSemantics};
use flatnet_core::reachability::reachability_profile;
use flatnet_netgen::{generate, NetGenConfig};

fn bench_ablations(c: &mut Criterion) {
    let net = generate(&NetGenConfig::paper_2020(800, 1));
    let google = net.clouds[0].asn;
    let gnode = net.node(google);
    let locking: Vec<_> = net.truth.neighbors(gnode).map(|(n, _)| n).collect();
    let leaker = net.node(net.tier2[3]);
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    for (name, semantics) in [
        ("corrected", LockingSemantics::Corrected),
        ("pre_erratum", LockingSemantics::PreErratum),
    ] {
        let scenario = LeakScenario {
            victim: gnode,
            leaker,
            victim_export: None,
            locking: locking.clone(),
            semantics,
        };
        group.bench_function(format!("global_lock_leak_{name}"), |b| {
            b.iter(|| simulate_leak(&net.truth, &scenario))
        });
    }
    // Topology views: public vs truth.
    let clouds: Vec<_> = net.cloud_providers().map(|cl| cl.asn).collect();
    for (name, g) in [("public", &net.public), ("truth", &net.truth)] {
        let tiers = net.tiers_for(g);
        group.bench_function(format!("cloud_profile_{name}"), |b| {
            b.iter(|| reachability_profile(g, &tiers, &clouds))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
