//! Fig. 4: unreachable-type breakdown per provider.

use criterion::{criterion_group, criterion_main, Criterion};
use flatnet_asgraph::astype::refine;
use flatnet_core::unreachable::unreachable_breakdown;
use flatnet_netgen::{generate, NetGenConfig};

fn bench_fig4(c: &mut Criterion) {
    let net = generate(&NetGenConfig::paper_2020(1500, 1));
    let tiers = net.tiers_for(&net.truth);
    let type_of = |n: flatnet_asgraph::NodeId| {
        let m = &net.meta[n.idx()];
        refine(m.class, m.users)
    };
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("unreachable_breakdown_google", |b| {
        b.iter(|| unreachable_breakdown(&net.truth, &tiers, net.clouds[0].asn, type_of))
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
