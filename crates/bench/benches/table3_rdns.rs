//! Table 3: footprint consolidation and rDNS confirmation stats.

use criterion::{criterion_group, criterion_main, Criterion};
use flatnet_core::pops_exp::rdns_table;
use flatnet_geo::pops::Footprint;
use flatnet_geo::rdns::LearnedConvention;
use flatnet_netgen::{generate, NetGenConfig};

fn bench_table3(c: &mut Criterion) {
    let net = generate(&NetGenConfig::paper_2020(800, 1));
    let fps: Vec<&Footprint> = net
        .geo
        .footprints
        .values()
        .collect();
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("rdns_table_all_networks", |b| b.iter(|| rdns_table(&fps)));
    // Hoiho-style convention learning on generated hostnames.
    let (asn, conv) = net.geo.conventions.iter().next().expect("conventions exist");
    let fp = &net.geo.footprints[asn];
    let samples: Vec<(String, String)> = fp
        .sites()
        .iter()
        .map(|s| (conv.hostname("xe-0-1-0", &s.city, 1), s.city.clone()))
        .collect();
    group.bench_function("hoiho_learn_convention", |b| {
        b.iter(|| LearnedConvention::learn(&samples, 3))
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
