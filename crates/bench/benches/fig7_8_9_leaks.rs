//! Figs. 7/8/9: route-leak CDFs (per configuration, and user-weighted).

use criterion::{criterion_group, criterion_main, Criterion};
use flatnet_core::leaks::{leak_cdf, Announce, Locking};
use flatnet_netgen::{generate, NetGenConfig};

fn bench_leaks(c: &mut Criterion) {
    let net = generate(&NetGenConfig::paper_2020(800, 1));
    let tiers = net.tiers_for(&net.truth);
    let google = net.clouds[0].asn;
    let weights = net.user_weights();
    let mut group = c.benchmark_group("fig7_8_9");
    group.sample_size(10);
    group.bench_function("leak_cdf_announce_all_30", |b| {
        b.iter(|| leak_cdf(&net.truth, &tiers, google, Announce::ToAll, Locking::None, 30, 7, None))
    });
    group.bench_function("leak_cdf_t12_lock_30", |b| {
        b.iter(|| leak_cdf(&net.truth, &tiers, google, Announce::ToAll, Locking::Tier12, 30, 7, None))
    });
    group.bench_function("leak_cdf_user_weighted_30", |b| {
        b.iter(|| {
            leak_cdf(&net.truth, &tiers, google, Announce::ToAll, Locking::None, 30, 7, Some(&weights))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_leaks);
criterion_main!(benches);
