//! Fig. 3: customer cones for all ASes + the scatter assembly.

use criterion::{criterion_group, criterion_main, Criterion};
use flatnet_asgraph::cone::customer_cone_sizes;
use flatnet_core::cone_compare::cone_vs_hfr;
use flatnet_core::reachability::hierarchy_free_all;
use flatnet_netgen::{generate, NetGenConfig};

fn bench_fig3(c: &mut Criterion) {
    let net = generate(&NetGenConfig::paper_2020(1500, 1));
    let tiers = net.tiers_for(&net.truth);
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("customer_cone_sizes_1500", |b| {
        b.iter(|| customer_cone_sizes(&net.truth))
    });
    let hfr = hierarchy_free_all(&net.truth, &tiers);
    let clouds: Vec<_> = net.cloud_providers().map(|cl| cl.asn).collect();
    group.bench_function("cone_vs_hfr_scatter", |b| {
        b.iter(|| cone_vs_hfr(&net.truth, &tiers, &hfr, &clouds))
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
