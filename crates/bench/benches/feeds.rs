//! §2.3/§4.1 feed pipeline benches: RIB collection, MRT codec, Gao
//! inference.

use criterion::{criterion_group, criterion_main, Criterion};
use flatnet_asgraph::infer_relationships;
use flatnet_bgpsim::collect_ribs;
use flatnet_core::feeds::place_monitors;
use flatnet_mrt::{from_rib_entries, parse_mrt, write_mrt};
use flatnet_netgen::{generate, NetGenConfig};

fn bench_feeds(c: &mut Criterion) {
    let net = generate(&NetGenConfig::paper_2020(800, 1));
    let monitors = place_monitors(&net, 20, 1);
    let origins: Vec<_> = net.truth.nodes().step_by(4).collect();
    let mut group = c.benchmark_group("feeds");
    group.sample_size(10);
    group.bench_function("collect_ribs_20mon_200orig", |b| {
        b.iter(|| collect_ribs(&net.truth, &monitors, &origins))
    });
    let ribs = collect_ribs(&net.truth, &monitors, &origins);
    let rib = from_rib_entries(&ribs, |o| net.addressing.origin_prefix(o));
    group.bench_function("mrt_write", |b| b.iter(|| write_mrt(&rib, 1)));
    let bytes = write_mrt(&rib, 1);
    group.bench_function("mrt_parse", |b| b.iter(|| parse_mrt(&bytes).unwrap()));
    let paths: Vec<_> = ribs.iter().map(|e| e.path.clone()).collect();
    group.bench_function("gao_inference", |b| b.iter(|| infer_relationships(&paths, 60.0)));
    group.finish();
}

criterion_group!(benches, bench_feeds);
criterion_main!(benches);
