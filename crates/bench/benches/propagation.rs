//! Micro-benchmarks of the core simulator: propagation, DAG construction,
//! and reliance, across topology sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flatnet_bgpsim::{propagate, reliance, NextHopDag, PropagationOptions};
use flatnet_netgen::{generate, NetGenConfig};

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagation");
    group.sample_size(20);
    for n in [500usize, 1500, 4000] {
        let net = generate(&NetGenConfig::paper_2020(n, 1));
        let google = net.node(net.clouds[0].asn);
        let opts = PropagationOptions::default();
        group.bench_with_input(BenchmarkId::new("propagate", n), &n, |b, _| {
            b.iter(|| propagate(&net.truth, google, &opts))
        });
        let out = propagate(&net.truth, google, &opts);
        group.bench_with_input(BenchmarkId::new("dag_build", n), &n, |b, _| {
            b.iter(|| NextHopDag::build(&net.truth, &opts, &out))
        });
        let dag = NextHopDag::build(&net.truth, &opts, &out);
        group.bench_with_input(BenchmarkId::new("reliance", n), &n, |b, _| {
            b.iter(|| reliance(&dag))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
