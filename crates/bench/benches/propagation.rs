//! Micro-benchmarks of the core simulator: propagation (legacy one-shot
//! vs the batched engine), DAG construction, and reliance, across
//! topology sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flatnet_bgpsim::{
    propagate, propagate_legacy, reliance, NextHopDag, PropagationConfig, Simulation,
    TopologySnapshot,
};
use flatnet_netgen::{generate, NetGenConfig};

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagation");
    group.sample_size(20);
    for n in [500usize, 1500, 4000] {
        let net = generate(&NetGenConfig::paper_2020(n, 1));
        let google = net.node(net.clouds[0].asn);
        let cfg = PropagationConfig::default();
        group.bench_with_input(BenchmarkId::new("propagate_legacy", n), &n, |b, _| {
            b.iter(|| propagate_legacy(&net.truth, google, &cfg))
        });
        group.bench_with_input(BenchmarkId::new("propagate", n), &n, |b, _| {
            b.iter(|| propagate(&net.truth, google, &cfg))
        });
        let snap = TopologySnapshot::compile(&net.truth);
        let sim = Simulation::over(&snap);
        let mut ctx = sim.ctx();
        group.bench_with_input(BenchmarkId::new("engine_reused", n), &n, |b, _| {
            b.iter(|| ctx.run(google).reachable_count())
        });
        let out = propagate(&net.truth, google, &cfg);
        group.bench_with_input(BenchmarkId::new("dag_build", n), &n, |b, _| {
            b.iter(|| NextHopDag::build(&net.truth, &cfg, &out))
        });
        let dag = NextHopDag::build(&net.truth, &cfg, &out);
        group.bench_with_input(BenchmarkId::new("reliance", n), &n, |b, _| {
            b.iter(|| reliance(&dag))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
