#![warn(missing_docs)]

//! # flatnet-mrt — MRT TABLE_DUMP_V2 RIB dumps, from scratch
//!
//! RouteViews and RIPE RIS publish the BGP RIB snapshots behind CAIDA's
//! AS-relationship datasets in the MRT format (RFC 6396). The Rust
//! ecosystem's MRT support is thin — one of this reproduction's stated
//! porting gaps — so this crate implements the subset those pipelines
//! actually consume, reading **and** writing:
//!
//! * the `TABLE_DUMP_V2` / `PEER_INDEX_TABLE` record (collector id, view
//!   name, peer table with AS4 peers);
//! * `TABLE_DUMP_V2` / `RIB_IPV4_UNICAST` records (prefix + one RIB entry
//!   per peer, with `ORIGIN`, `AS_PATH` (4-byte ASes, AS_SEQUENCE), and
//!   `NEXT_HOP` path attributes).
//!
//! [`from_rib_entries`] bridges from the simulated route collectors in
//! [`flatnet_bgpsim::collectors`], so a synthetic Internet can emit byte-
//! exact MRT that any standard tooling could parse — and the `flatnet`
//! CLI can round-trip for relationship inference.

mod codec;
mod model;

pub use codec::{parse_mrt, parse_mrt_with, write_mrt, MrtError};
pub use model::{from_rib_entries, to_rib_entries, MrtPeer, MrtRib, MrtRoute};
