//! Binary encoding/decoding of the RFC 6396 TABLE_DUMP_V2 subset.
//!
//! Wire layout implemented here:
//!
//! ```text
//! MRT common header:  timestamp u32 | type u16 | subtype u16 | length u32
//!   type 13 = TABLE_DUMP_V2
//!   subtype 1 = PEER_INDEX_TABLE:
//!     collector BGP id u32 | view name len u16 | view name bytes |
//!     peer count u16 | peers: { peer type u8 (0x02 = IPv4 + AS4) |
//!                               BGP id u32 | IPv4 addr [4] | ASN u32 }
//!   subtype 2 = RIB_IPV4_UNICAST:
//!     sequence u32 | prefix len u8 | prefix bytes ceil(len/8) |
//!     entry count u16 | entries: { peer index u16 | originated u32 |
//!                                  attr len u16 | BGP attributes }
//! BGP attributes: flags u8 | type u8 | len u8 (u16 when flags & 0x10) | data
//!   ORIGIN (1): 1 byte, 0 = IGP
//!   AS_PATH (2): segments { type u8 (2 = AS_SEQUENCE) | count u8 |
//!                           ASNs u32 each } — 4-byte ASes per RFC 6396
//!   NEXT_HOP (3): 4 bytes
//! ```

use crate::model::{MrtPeer, MrtRib, MrtRoute};
use flatnet_asgraph::ingest::{ParseDiagnostics, ParseOptions, RecordLocation};
use flatnet_asgraph::AsId;
use flatnet_prefixdb::Ipv4Prefix;
use std::fmt;
use std::net::Ipv4Addr;

const MRT_TYPE_TABLE_DUMP_V2: u16 = 13;
const SUBTYPE_PEER_INDEX_TABLE: u16 = 1;
const SUBTYPE_RIB_IPV4_UNICAST: u16 = 2;
const PEER_TYPE_IPV4_AS4: u8 = 0x02;
const ATTR_ORIGIN: u8 = 1;
const ATTR_AS_PATH: u8 = 2;
const ATTR_NEXT_HOP: u8 = 3;
const FLAG_TRANSITIVE: u8 = 0x40;
const FLAG_EXTENDED_LEN: u8 = 0x10;
const SEG_AS_SEQUENCE: u8 = 2;

/// Decode errors with byte offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MrtError {
    /// Byte offset the error was detected at.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for MrtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MRT parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for MrtError {}

// ---------------------------------------------------------------- writer

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_record(out: &mut Vec<u8>, timestamp: u32, subtype: u16, body: &[u8]) {
    put_u32(out, timestamp);
    put_u16(out, MRT_TYPE_TABLE_DUMP_V2);
    put_u16(out, subtype);
    put_u32(out, body.len() as u32);
    out.extend_from_slice(body);
}

fn encode_attributes(path: &[AsId], next_hop: Ipv4Addr) -> Vec<u8> {
    let mut attrs = Vec::new();
    // ORIGIN = IGP.
    attrs.extend_from_slice(&[FLAG_TRANSITIVE, ATTR_ORIGIN, 1, 0]);
    // AS_PATH: one AS_SEQUENCE segment (extended length for long paths).
    let mut seg = Vec::with_capacity(2 + 4 * path.len());
    // RFC 4271 caps a segment at 255 ASes; chunk longer paths.
    for chunk in path.chunks(255) {
        seg.push(SEG_AS_SEQUENCE);
        seg.push(chunk.len() as u8);
        for a in chunk {
            seg.extend_from_slice(&a.0.to_be_bytes());
        }
    }
    if path.is_empty() {
        // Zero-segment AS_PATH: the peer originates the prefix.
    }
    attrs.push(FLAG_TRANSITIVE | FLAG_EXTENDED_LEN);
    attrs.push(ATTR_AS_PATH);
    put_u16(&mut attrs, seg.len() as u16);
    attrs.extend_from_slice(&seg);
    // NEXT_HOP.
    attrs.extend_from_slice(&[FLAG_TRANSITIVE, ATTR_NEXT_HOP, 4]);
    attrs.extend_from_slice(&next_hop.octets());
    attrs
}

/// Serializes a RIB snapshot as MRT bytes: one PEER_INDEX_TABLE record
/// followed by one RIB_IPV4_UNICAST record per route.
pub fn write_mrt(rib: &MrtRib, timestamp: u32) -> Vec<u8> {
    let mut out = Vec::new();

    let mut body = Vec::new();
    put_u32(&mut body, rib.collector_id);
    let name = rib.view_name.as_bytes();
    put_u16(&mut body, name.len() as u16);
    body.extend_from_slice(name);
    put_u16(&mut body, rib.peers.len() as u16);
    for p in &rib.peers {
        body.push(PEER_TYPE_IPV4_AS4);
        put_u32(&mut body, p.bgp_id);
        body.extend_from_slice(&p.addr.octets());
        put_u32(&mut body, p.asn.0);
    }
    put_record(&mut out, timestamp, SUBTYPE_PEER_INDEX_TABLE, &body);

    for (seq, route) in rib.routes.iter().enumerate() {
        let mut body = Vec::new();
        put_u32(&mut body, seq as u32);
        body.push(route.prefix.len());
        let nbytes = route.prefix.len().div_ceil(8) as usize;
        body.extend_from_slice(&route.prefix.network_bits().to_be_bytes()[..nbytes]);
        put_u16(&mut body, route.entries.len() as u16);
        for (peer_idx, path) in &route.entries {
            put_u16(&mut body, *peer_idx);
            put_u32(&mut body, timestamp); // originated time
            let next_hop = rib
                .peers
                .get(*peer_idx as usize)
                .map(|p| p.addr)
                .unwrap_or(Ipv4Addr::UNSPECIFIED);
            let attrs = encode_attributes(path, next_hop);
            put_u16(&mut body, attrs.len() as u16);
            body.extend_from_slice(&attrs);
        }
        put_record(&mut out, timestamp, SUBTYPE_RIB_IPV4_UNICAST, &body);
    }
    out
}

// ---------------------------------------------------------------- reader

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: impl Into<String>) -> MrtError {
        MrtError { offset: self.pos, message: message.into() }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], MrtError> {
        if self.pos + n > self.data.len() {
            return Err(self.err(format!("truncated: wanted {n} bytes")));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, MrtError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, MrtError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, MrtError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn done(&self) -> bool {
        self.pos >= self.data.len()
    }
}

/// Minimum encoded size of one peer entry (type + BGP id + addr + ASN).
const PEER_ENTRY_BYTES: usize = 13;
/// Minimum encoded size of one RIB entry (peer index + originated + attr len).
const RIB_ENTRY_MIN_BYTES: usize = 8;

fn parse_peer_table(body: &mut Cursor<'_>, rib: &mut MrtRib) -> Result<(), MrtError> {
    rib.collector_id = body.u32()?;
    let name_len = body.u16()? as usize;
    rib.view_name = String::from_utf8_lossy(body.take(name_len)?).into_owned();
    let count = body.u16()?;
    let remaining = body.data.len() - body.pos;
    if count as usize * PEER_ENTRY_BYTES > remaining {
        return Err(body.err(format!(
            "peer count {count} needs {} bytes but only {remaining} remain",
            count as usize * PEER_ENTRY_BYTES
        )));
    }
    rib.peers.reserve(count as usize);
    for _ in 0..count {
        let ptype = body.u8()?;
        if ptype != PEER_TYPE_IPV4_AS4 {
            return Err(body.err(format!("unsupported peer type {ptype:#x} (IPv4+AS4 only)")));
        }
        let bgp_id = body.u32()?;
        let addr: [u8; 4] = body.take(4)?.try_into().unwrap();
        let asn = body.u32()?;
        rib.peers.push(MrtPeer { bgp_id, addr: Ipv4Addr::from(addr), asn: AsId(asn) });
    }
    Ok(())
}

fn parse_as_path(data: &[u8], base: usize) -> Result<Vec<AsId>, MrtError> {
    let mut c = Cursor { data, pos: 0 };
    let mut path = Vec::new();
    while !c.done() {
        let seg_type = c.u8()?;
        if seg_type != SEG_AS_SEQUENCE {
            return Err(MrtError {
                offset: base + c.pos,
                message: format!("unsupported AS_PATH segment type {seg_type}"),
            });
        }
        let count = c.u8()? as usize;
        for _ in 0..count {
            path.push(AsId(c.u32()?));
        }
    }
    Ok(path)
}

fn parse_rib_record(body: &mut Cursor<'_>, rib: &mut MrtRib) -> Result<(), MrtError> {
    let _seq = body.u32()?;
    let plen = body.u8()?;
    if plen > 32 {
        return Err(body.err(format!("bad prefix length {plen}")));
    }
    let nbytes = plen.div_ceil(8) as usize;
    let raw = body.take(nbytes)?;
    let mut bits = [0u8; 4];
    bits[..nbytes].copy_from_slice(raw);
    let prefix = Ipv4Prefix::new(Ipv4Addr::from(bits), plen);
    let count = body.u16()?;
    let remaining = body.data.len() - body.pos;
    if count as usize * RIB_ENTRY_MIN_BYTES > remaining {
        return Err(body.err(format!(
            "entry count {count} needs at least {} bytes but only {remaining} remain",
            count as usize * RIB_ENTRY_MIN_BYTES
        )));
    }
    let mut entries = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let peer_idx = body.u16()?;
        let _originated = body.u32()?;
        let attr_len = body.u16()? as usize;
        let attr_base = body.pos;
        let attrs = body.take(attr_len)?;
        let mut a = Cursor { data: attrs, pos: 0 };
        let mut path = Vec::new();
        while !a.done() {
            let flags = a.u8()?;
            let ty = a.u8()?;
            let len = if flags & FLAG_EXTENDED_LEN != 0 {
                a.u16()? as usize
            } else {
                a.u8()? as usize
            };
            let data_pos = a.pos;
            let data = a.take(len)?;
            if ty == ATTR_AS_PATH {
                path = parse_as_path(data, attr_base + data_pos)?;
            }
        }
        entries.push((peer_idx, path));
    }
    rib.routes.push(MrtRoute { prefix, entries });
    Ok(())
}

/// Parses one record body. Mutations to `rib` are rolled back by the caller
/// if this returns an error, so lenient mode can skip the record cleanly.
fn parse_record_body(
    ty: u16,
    subtype: u16,
    body: &[u8],
    body_start: usize,
    rib: &mut MrtRib,
    saw_peer_table: &mut bool,
) -> Result<(), MrtError> {
    if ty != MRT_TYPE_TABLE_DUMP_V2 {
        return Err(MrtError {
            offset: body_start,
            message: format!("unsupported MRT type {ty} (TABLE_DUMP_V2 only)"),
        });
    }
    let mut bc = Cursor { data: body, pos: 0 };
    match subtype {
        SUBTYPE_PEER_INDEX_TABLE => {
            parse_peer_table(&mut bc, rib)?;
            *saw_peer_table = true;
        }
        SUBTYPE_RIB_IPV4_UNICAST => {
            if !*saw_peer_table {
                return Err(MrtError {
                    offset: body_start,
                    message: "RIB record before PEER_INDEX_TABLE".into(),
                });
            }
            parse_rib_record(&mut bc, rib)?;
        }
        other => {
            return Err(MrtError {
                offset: body_start,
                message: format!("unsupported TABLE_DUMP_V2 subtype {other}"),
            })
        }
    }
    if !bc.done() {
        return Err(MrtError {
            offset: body_start + bc.pos,
            message: "trailing bytes in record body".into(),
        });
    }
    Ok(())
}

/// Parses MRT bytes produced by [`write_mrt`] (or any TABLE_DUMP_V2 dump
/// restricted to IPv4+AS4 peers and IPv4-unicast RIB records). Unknown
/// record types are rejected with their offset.
pub fn parse_mrt(bytes: &[u8]) -> Result<MrtRib, MrtError> {
    parse_mrt_with(bytes, &ParseOptions::strict()).map(|(rib, _)| rib)
}

/// [`parse_mrt`] with explicit strictness.
///
/// In lenient mode a record whose *body* fails to parse (bad peer type, bad
/// prefix length, malformed attributes, trailing bytes) is skipped — the
/// record length from the header lets the parser resynchronise at the next
/// record boundary — and tallied in [`ParseDiagnostics`], up to the error
/// budget. Framing corruption (a truncated header, or a record length that
/// overruns the remaining buffer) is always fatal: past it, record
/// boundaries can no longer be trusted.
pub fn parse_mrt_with(
    bytes: &[u8],
    opts: &ParseOptions,
) -> Result<(MrtRib, ParseDiagnostics), MrtError> {
    let mut c = Cursor { data: bytes, pos: 0 };
    let mut rib = MrtRib::default();
    let mut saw_peer_table = false;
    let mut diag = ParseDiagnostics::new();
    let mut record_no = 0usize;
    while !c.done() {
        let _timestamp = c.u32()?;
        let ty = c.u16()?;
        let subtype = c.u16()?;
        let len_field_at = c.pos;
        let len = c.u32()? as usize;
        // Satellite check: validate the record length against the remaining
        // buffer *before* slicing, so a corrupt/oversized length field gets a
        // dedicated error naming both sizes instead of a generic failure.
        let remaining = c.data.len() - c.pos;
        if len > remaining {
            return Err(MrtError {
                offset: len_field_at,
                message: format!(
                    "record length {len} exceeds the {remaining} bytes remaining \
                     (truncated dump or corrupt length field)"
                ),
            });
        }
        let body_start = c.pos;
        let body = c.take(len)?;
        // Snapshot so a failed record can be rolled back and skipped.
        let peers_before = rib.peers.len();
        let routes_before = rib.routes.len();
        let collector_before = rib.collector_id;
        let view_before = (subtype == SUBTYPE_PEER_INDEX_TABLE).then(|| rib.view_name.clone());
        match parse_record_body(ty, subtype, body, body_start, &mut rib, &mut saw_peer_table) {
            Ok(()) => diag.record_ok(),
            Err(e) => {
                rib.peers.truncate(peers_before);
                rib.routes.truncate(routes_before);
                rib.collector_id = collector_before;
                if let Some(v) = view_before {
                    rib.view_name = v;
                }
                if opts.budget_allows(diag.dropped()) {
                    diag.record_dropped(RecordLocation::Record(record_no), e.to_string());
                } else if opts.strict {
                    return Err(e);
                } else {
                    diag.record_dropped(RecordLocation::Record(record_no), e.to_string());
                    return Err(MrtError {
                        offset: body_start,
                        message: opts.budget_exhausted_message(diag.issues.last().unwrap()),
                    });
                }
            }
        }
        record_no += 1;
    }
    diag.publish("mrt");
    Ok((rib, diag))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MrtRib {
        MrtRib {
            collector_id: 0xC011_EC70,
            view_name: "flatnet".into(),
            peers: vec![
                MrtPeer { bgp_id: 100, addr: Ipv4Addr::new(10, 0, 0, 100), asn: AsId(100) },
                MrtPeer { bgp_id: 101, addr: Ipv4Addr::new(10, 0, 0, 101), asn: AsId(4_200_000_001) },
            ],
            routes: vec![
                MrtRoute {
                    prefix: "192.0.2.0/24".parse().unwrap(),
                    entries: vec![
                        (0, vec![AsId(200), AsId(300)]),
                        (1, vec![AsId(300)]),
                    ],
                },
                MrtRoute {
                    prefix: "10.0.0.0/8".parse().unwrap(),
                    entries: vec![(0, vec![])],
                },
            ],
        }
    }

    #[test]
    fn roundtrips_bytes() {
        let rib = sample();
        let bytes = write_mrt(&rib, 1_600_000_000);
        let back = parse_mrt(&bytes).unwrap();
        assert_eq!(back, rib);
    }

    #[test]
    fn header_fields_are_wire_correct() {
        let bytes = write_mrt(&sample(), 42);
        // timestamp
        assert_eq!(&bytes[0..4], &42u32.to_be_bytes());
        // type 13 / subtype 1
        assert_eq!(&bytes[4..6], &13u16.to_be_bytes());
        assert_eq!(&bytes[6..8], &1u16.to_be_bytes());
        let len = u32::from_be_bytes(bytes[8..12].try_into().unwrap()) as usize;
        // Second record starts right after.
        assert_eq!(&bytes[12 + len + 4..12 + len + 6], &13u16.to_be_bytes());
        assert_eq!(&bytes[12 + len + 6..12 + len + 8], &2u16.to_be_bytes());
    }

    #[test]
    fn as4_numbers_survive() {
        let rib = sample();
        let bytes = write_mrt(&rib, 1);
        let back = parse_mrt(&bytes).unwrap();
        assert_eq!(back.peers[1].asn, AsId(4_200_000_001));
    }

    #[test]
    fn long_paths_chunk_into_multiple_segments() {
        let long: Vec<AsId> = (1..=600u32).map(AsId).collect();
        let rib = MrtRib {
            collector_id: 1,
            view_name: String::new(),
            peers: vec![MrtPeer { bgp_id: 1, addr: Ipv4Addr::LOCALHOST, asn: AsId(1) }],
            routes: vec![MrtRoute { prefix: "10.0.0.0/8".parse().unwrap(), entries: vec![(0, long.clone())] }],
        };
        let back = parse_mrt(&write_mrt(&rib, 1)).unwrap();
        assert_eq!(back.routes[0].entries[0].1, long);
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(parse_mrt(&[1, 2, 3]).is_err());
        let mut bytes = write_mrt(&sample(), 1);
        bytes.truncate(bytes.len() - 3);
        let err = parse_mrt(&bytes).unwrap_err();
        assert!(err.message.contains("truncated"), "{err}");
        // Unknown type.
        let mut bad = Vec::new();
        put_u32(&mut bad, 0);
        put_u16(&mut bad, 99);
        put_u16(&mut bad, 1);
        put_u32(&mut bad, 0);
        assert!(parse_mrt(&bad).unwrap_err().message.contains("unsupported MRT type"));
    }

    #[test]
    fn rejects_rib_before_peer_table() {
        let rib = sample();
        let bytes = write_mrt(&rib, 1);
        // Strip the first record (the peer table).
        let len = u32::from_be_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let rest = &bytes[12 + len..];
        let err = parse_mrt(rest).unwrap_err();
        assert!(err.message.contains("before PEER_INDEX_TABLE"), "{err}");
    }

    /// Clobbers the prefix-length byte of the first RIB record (record #1,
    /// after the peer table) so its body fails to parse while the record
    /// framing stays intact.
    fn corrupt_first_rib_record(bytes: &mut [u8]) {
        let l0 = u32::from_be_bytes(bytes[8..12].try_into().unwrap()) as usize;
        // record 1 header at 12+l0; body starts 12 bytes later; plen is at
        // body offset 4 (after the u32 sequence number).
        bytes[12 + l0 + 12 + 4] = 99;
    }

    #[test]
    fn oversized_length_field_errors_cleanly() {
        let mut bytes = write_mrt(&sample(), 1);
        bytes[8..12].copy_from_slice(&u32::MAX.to_be_bytes());
        let err = parse_mrt(&bytes).unwrap_err();
        assert_eq!(err.offset, 8, "{err}");
        assert!(err.message.contains("corrupt length field"), "{err}");
        assert!(err.message.contains(&format!("{}", u32::MAX)), "{err}");
    }

    #[test]
    fn lenient_skips_bad_record_and_resyncs() {
        let rib = sample();
        let mut bytes = write_mrt(&rib, 1);
        corrupt_first_rib_record(&mut bytes);
        // Strict fails at the corrupt record.
        let err = parse_mrt(&bytes).unwrap_err();
        assert!(err.message.contains("bad prefix length"), "{err}");
        // Lenient drops exactly that record and keeps everything else.
        let (back, diag) = parse_mrt_with(&bytes, &ParseOptions::lenient()).unwrap();
        assert_eq!(diag.dropped(), 1, "{:?}", diag.issues);
        assert_eq!(diag.records_ok, 2);
        assert_eq!(diag.issues[0].location, RecordLocation::Record(1));
        assert!(diag.issues[0].message.contains("bad prefix length"), "{}", diag.issues[0]);
        assert_eq!(back.peers, rib.peers);
        assert_eq!(back.routes.len(), 1);
        assert_eq!(back.routes[0], rib.routes[1]);
    }

    #[test]
    fn lenient_framing_corruption_is_still_fatal() {
        let mut bytes = write_mrt(&sample(), 1);
        bytes[8..12].copy_from_slice(&10_000_000u32.to_be_bytes());
        let err = parse_mrt_with(&bytes, &ParseOptions::lenient()).unwrap_err();
        assert!(err.message.contains("exceeds"), "{err}");
    }

    #[test]
    fn lenient_rolls_back_failed_peer_table() {
        let rib = sample();
        let mut bytes = write_mrt(&rib, 1);
        // Peer table body: collector u32, name_len u16, name, count u16.
        let count_at = 12 + 4 + 2 + rib.view_name.len();
        bytes[count_at..count_at + 2].copy_from_slice(&u16::MAX.to_be_bytes());
        // Strict: the bogus count errors before any huge allocation.
        let err = parse_mrt(&bytes).unwrap_err();
        assert!(err.message.contains("peer count 65535"), "{err}");
        // Lenient: the peer table is dropped, so every RIB record that
        // depends on it is dropped too and nothing leaks into the result.
        let (back, diag) = parse_mrt_with(&bytes, &ParseOptions::lenient()).unwrap();
        assert_eq!(diag.dropped(), 3, "{:?}", diag.issues);
        assert!(back.peers.is_empty());
        assert!(back.routes.is_empty());
        assert!(diag.issues[1].message.contains("before PEER_INDEX_TABLE"));
    }

    #[test]
    fn lenient_error_budget_is_enforced() {
        let mut bytes = write_mrt(&sample(), 1);
        corrupt_first_rib_record(&mut bytes);
        // Also corrupt the second RIB record the same way.
        let l0 = u32::from_be_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let r1 = 12 + l0;
        let l1 = u32::from_be_bytes(bytes[r1 + 8..r1 + 12].try_into().unwrap()) as usize;
        bytes[r1 + 12 + l1 + 12 + 4] = 99;
        let err =
            parse_mrt_with(&bytes, &ParseOptions::lenient().with_max_errors(1)).unwrap_err();
        assert!(err.message.contains("error budget exhausted"), "{err}");
        let (back, diag) =
            parse_mrt_with(&bytes, &ParseOptions::lenient().with_max_errors(2)).unwrap();
        assert_eq!(diag.dropped(), 2);
        assert!(back.routes.is_empty());
        assert_eq!(back.peers.len(), 2);
    }

    #[test]
    fn empty_rib_roundtrip() {
        let rib = MrtRib {
            collector_id: 7,
            view_name: "v".into(),
            peers: vec![],
            routes: vec![],
        };
        assert_eq!(parse_mrt(&write_mrt(&rib, 0)).unwrap(), rib);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_rib() -> impl Strategy<Value = MrtRib> {
            let peer = (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(id, a, asn)| MrtPeer {
                bgp_id: id,
                addr: Ipv4Addr::from(a),
                asn: AsId(asn),
            });
            let peers = proptest::collection::vec(peer, 1..5);
            peers.prop_flat_map(|peers| {
                let n_peers = peers.len() as u16;
                let path = proptest::collection::vec(any::<u32>().prop_map(AsId), 0..6);
                let entry = (0..n_peers, path);
                let route = (any::<u32>(), 0u8..=32, proptest::collection::vec(entry, 0..4))
                    .prop_map(|(bits, len, entries)| MrtRoute {
                        prefix: Ipv4Prefix::new(Ipv4Addr::from(bits), len),
                        entries,
                    });
                (
                    Just(peers),
                    proptest::collection::vec(route, 0..6),
                    any::<u32>(),
                    "[a-z]{0,12}",
                )
                    .prop_map(|(peers, routes, collector_id, view_name)| MrtRib {
                        collector_id,
                        view_name,
                        peers,
                        routes,
                    })
            })
        }

        proptest! {
            #[test]
            fn any_rib_roundtrips(rib in arb_rib(), ts in any::<u32>()) {
                let bytes = write_mrt(&rib, ts);
                let back = parse_mrt(&bytes).unwrap();
                prop_assert_eq!(back, rib);
            }

            #[test]
            fn parser_never_panics_on_noise(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
                let _ = parse_mrt(&bytes); // must not panic
            }
        }
    }
}
