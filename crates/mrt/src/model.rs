//! In-memory RIB model and conversions to/from the simulator's collector
//! output.

use flatnet_asgraph::AsId;
use flatnet_bgpsim::RibEntry;
use flatnet_prefixdb::Ipv4Prefix;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// One peer (monitor session) in the PEER_INDEX_TABLE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrtPeer {
    /// Peer BGP identifier.
    pub bgp_id: u32,
    /// Peer IPv4 address.
    pub addr: Ipv4Addr,
    /// Peer AS number (AS4).
    pub asn: AsId,
}

/// One RIB_IPV4_UNICAST record: a prefix with one entry per peer that
/// carries a route for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MrtRoute {
    /// The announced prefix.
    pub prefix: Ipv4Prefix,
    /// `(peer index, AS path)` pairs. The AS path excludes the peer's own
    /// AS (as in a real RIB) and ends at the origin.
    pub entries: Vec<(u16, Vec<AsId>)>,
}

/// A complete RIB snapshot: peer table + routes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MrtRib {
    /// Collector BGP id (header of the PEER_INDEX_TABLE).
    pub collector_id: u32,
    /// Optional view name.
    pub view_name: String,
    /// The peer table; RIB entries reference it by index.
    pub peers: Vec<MrtPeer>,
    /// RIB records, one per prefix.
    pub routes: Vec<MrtRoute>,
}

/// Builds an [`MrtRib`] from simulated collector output.
///
/// `prefix_of` maps an origin AS to the prefix it announces; origins
/// without a prefix are skipped. Peers are synthesized deterministically
/// from the monitor ASNs (BGP id = ASN, address `10.x.y.z` derived from
/// the ASN). Paths are stored without the monitor's own AS, matching real
/// RIB semantics ([`to_rib_entries`] adds it back).
pub fn from_rib_entries(
    entries: &[RibEntry],
    mut prefix_of: impl FnMut(AsId) -> Option<Ipv4Prefix>,
) -> MrtRib {
    let mut peer_index: BTreeMap<u32, u16> = BTreeMap::new();
    let mut peers = Vec::new();
    for e in entries {
        peer_index.entry(e.monitor.0).or_insert_with(|| {
            let idx = peers.len() as u16;
            let a = e.monitor.0;
            peers.push(MrtPeer {
                bgp_id: a,
                addr: Ipv4Addr::new(10, (a >> 16) as u8, (a >> 8) as u8, a as u8),
                asn: e.monitor,
            });
            idx
        });
    }
    let mut by_origin: BTreeMap<u32, Vec<(u16, Vec<AsId>)>> = BTreeMap::new();
    for e in entries {
        let idx = peer_index[&e.monitor.0];
        // Drop the monitor's own AS from the stored path.
        let path: Vec<AsId> = e.path.iter().copied().skip(1).collect();
        by_origin.entry(e.origin.0).or_default().push((idx, path));
    }
    let mut routes = Vec::new();
    for (origin, entries) in by_origin {
        if let Some(prefix) = prefix_of(AsId(origin)) {
            routes.push(MrtRoute { prefix, entries });
        }
    }
    MrtRib { collector_id: 0xC011_EC70, view_name: "flatnet".into(), peers, routes }
}

/// Expands an [`MrtRib`] back into flat collector entries (monitor AS
/// prepended to each stored path). Entries referencing out-of-range peer
/// indices are skipped. Origins are taken from the last path element;
/// empty paths (the peer originates the prefix itself) yield a one-hop
/// entry at the peer.
pub fn to_rib_entries(rib: &MrtRib) -> Vec<RibEntry> {
    let mut out = Vec::new();
    for route in &rib.routes {
        for (idx, path) in &route.entries {
            let Some(peer) = rib.peers.get(*idx as usize) else { continue };
            let mut full = Vec::with_capacity(path.len() + 1);
            full.push(peer.asn);
            full.extend_from_slice(path);
            let origin = *full.last().unwrap();
            out.push(RibEntry { monitor: peer.asn, origin, path: full });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(monitor: u32, path: &[u32]) -> RibEntry {
        let path: Vec<AsId> = path.iter().map(|&a| AsId(a)).collect();
        RibEntry { monitor: AsId(monitor), origin: *path.last().unwrap(), path }
    }

    #[test]
    fn from_and_to_rib_entries_roundtrip() {
        let entries = vec![
            entry(100, &[100, 200, 300]),
            entry(100, &[100, 400]),
            entry(101, &[101, 200, 300]),
        ];
        let rib = from_rib_entries(&entries, |origin| {
            Some(Ipv4Prefix::new(Ipv4Addr::from(origin.0 << 12), 20))
        });
        assert_eq!(rib.peers.len(), 2);
        assert_eq!(rib.routes.len(), 2); // origins 300 and 400
        let mut back = to_rib_entries(&rib);
        back.sort_by_key(|e| (e.monitor, e.origin));
        let mut want = entries.clone();
        want.sort_by_key(|e| (e.monitor, e.origin));
        assert_eq!(back, want);
    }

    #[test]
    fn origins_without_prefix_are_dropped() {
        let entries = vec![entry(100, &[100, 200])];
        let rib = from_rib_entries(&entries, |_| None);
        assert!(rib.routes.is_empty());
        assert_eq!(rib.peers.len(), 1); // peer table still built
    }

    #[test]
    fn self_originated_prefix_roundtrip() {
        // Monitor originates the prefix: stored path is empty.
        let entries = vec![entry(100, &[100])];
        let rib = from_rib_entries(&entries, |origin| {
            Some(Ipv4Prefix::new(Ipv4Addr::from(origin.0 << 12), 20))
        });
        assert_eq!(rib.routes[0].entries[0].1, Vec::<AsId>::new());
        let back = to_rib_entries(&rib);
        assert_eq!(back, entries);
    }

    #[test]
    fn bad_peer_index_skipped() {
        let mut rib = from_rib_entries(&[entry(100, &[100, 200])], |o| {
            Some(Ipv4Prefix::new(Ipv4Addr::from(o.0), 24))
        });
        rib.routes[0].entries[0].0 = 42; // out of range
        assert!(to_rib_entries(&rib).is_empty());
    }
}
