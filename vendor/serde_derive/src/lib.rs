//! No-op derive macros matching the `serde_derive` entry points.
//!
//! The companion `serde` stub defines `Serialize`/`Deserialize` as empty
//! marker traits that are never used as bounds, so the derives don't
//! need to emit impls at all.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
