//! Offline stub of `rand` 0.8 covering the surface this workspace uses:
//! `SmallRng::seed_from_u64`, `Rng::gen::<f64>()`, and
//! `Rng::gen_range(..)` / `(..=)` over integer ranges.
//!
//! `SmallRng` is xoshiro256++ seeded through SplitMix64, the same
//! algorithm family upstream `rand` uses on 64-bit targets. The stream
//! is deterministic and stable but not bit-identical to upstream.

use core::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                let draw = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.next_u64() % (span + 1)
                };
                lo + draw as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize);

/// User-facing sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (`f64` in `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream rand seeds xoshiro. The
            // pre-mix constant decorrelates adjacent small seeds.
            let mut x = seed ^ 0x9B05_688C_2B3E_6C1F;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: f64 = a.gen();
            let y: f64 = b.gen();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
            assert!(a.gen_range(3usize..10) < 10);
            assert!(b.gen_range(3usize..10) >= 3);
            let v = a.gen_range(0u32..=5);
            assert!(v <= 5);
            b.gen_range(0u32..=5);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<f64>() == b.gen::<f64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_mean_is_plausible() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
