//! Offline stub of `criterion`: same registration API, a much simpler
//! engine. Each benchmark runs its closure for a handful of iterations
//! and prints the median wall-clock time. No statistics, no HTML
//! reports — enough to keep `cargo bench` working and the bench code
//! honest in environments without crates.io access.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Iterations measured per benchmark (upstream's `sample_size` is
/// accepted but treated as a hint only).
const SAMPLES: usize = 10;

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Runs one benchmark's measurement loop.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Times `f`, recording one sample per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            hint::black_box(f());
            let dt = t0.elapsed();
            if dt < best {
                best = dt;
            }
        }
        println!("    best of {}: {:?}", self.samples, best);
    }
}

/// A parameterized benchmark label, e.g. `BenchmarkId::new("solve", n)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// The top-level benchmark registry.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("group {}", name.into());
        BenchmarkGroup { _c: self, samples: SAMPLES }
    }

    /// Registers and immediately runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("  bench {}", id.into().label);
        f(&mut Bencher { samples: SAMPLES });
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Accepts upstream's sample-count knob (used here as a cap).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(2, SAMPLES);
        self
    }

    /// Accepts upstream's time budget knob (ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Registers and immediately runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("  bench {}", id.into().label);
        f(&mut Bencher { samples: self.samples });
        self
    }

    /// Like `bench_function`, passing `input` to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("  bench {}", id.into().label);
        f(&mut Bencher { samples: self.samples }, input);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
