//! Offline stub of `proptest`: generation-only property testing.
//!
//! Implements the subset this workspace uses — [`Strategy`] with
//! `prop_map`/`prop_flat_map`, [`arbitrary::any`], `Just`, integer range
//! strategies, tuple strategies, [`collection::vec`], [`option::of`],
//! simple `"[a-z]{0,12}"`-style string patterns, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream: cases are generated from a fixed seed (so
//! every run explores the same inputs and failures reproduce), and a
//! failing case is reported by panic without shrinking.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// expands to a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!([$cfg] $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!([$crate::test_runner::ProptestConfig::default()] $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cases = { $cfg }.cases;
            let __strat = ($($s,)+);
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            for _ in 0..cases {
                let ($($p,)+) =
                    $crate::strategy::Strategy::gen_value(&__strat, &mut __rng);
                // Bodies may `return Ok(())` early, as in upstream proptest.
                let __result: ::core::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        Ok(())
                    })();
                if let ::core::result::Result::Err(e) = __result {
                    panic!("property failed: {e}");
                }
            }
        }
        $crate::__proptest_fns!([$cfg] $($rest)*);
    };
}

/// `assert!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}
