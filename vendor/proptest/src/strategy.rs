//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn gen_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}", self.start, self.end
                );
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy {lo}..={hi}");
                let span = (hi - lo) as u64;
                let draw = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.below(span + 1)
                };
                lo + draw as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
