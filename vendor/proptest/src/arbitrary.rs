//! `any::<T>()` — strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the whole domain of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric values with a broad magnitude spread.
        let mantissa = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let exp = (rng.below(61) as i32 - 30) as f64;
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * mantissa * exp.exp2()
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy covering the whole domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
