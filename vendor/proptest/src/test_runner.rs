//! Test configuration and the deterministic RNG behind generation.

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generation RNG (SplitMix64). A fixed seed means every
/// run explores the same cases, so failures always reproduce.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG every property test starts from.
    pub fn deterministic() -> Self {
        TestRng { state: 0x9E3779B97F4A7C15 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}
