//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Bias toward Some (3 in 4), as upstream does.
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.gen_value(rng))
        }
    }
}

/// `None` or `Some(value from s)`.
pub fn of<S: Strategy>(s: S) -> OptionStrategy<S> {
    OptionStrategy { inner: s }
}
