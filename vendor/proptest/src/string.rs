//! String strategies from simple regex-like patterns.
//!
//! A `&str` is itself a strategy (as in upstream proptest, where the
//! pattern is a full regex). This stub supports the subset the
//! workspace uses: literal characters, character classes like
//! `[a-z0-9_]`, and quantifiers `{n}`, `{m,n}`, `?`, `*`, `+`
//! (`*`/`+` are capped at 8 repetitions).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Piece {
    /// Candidate characters (expanded from a class or a literal).
    Chars(Vec<char>),
}

#[derive(Debug, Clone)]
struct Term {
    piece: Piece,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<Term> {
    let mut chars = pat.chars().peekable();
    let mut terms = Vec::new();
    while let Some(c) = chars.next() {
        let piece = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated character class in {pat:?}"),
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                            let lo = prev.take().unwrap();
                            let hi = chars.next().unwrap();
                            for ch in lo..=hi {
                                set.push(ch);
                            }
                        }
                        Some(ch) => {
                            if let Some(p) = prev.replace(ch) {
                                set.push(p);
                            }
                        }
                    }
                }
                if let Some(p) = prev {
                    set.push(p);
                }
                assert!(!set.is_empty(), "empty character class in {pat:?}");
                Piece::Chars(set)
            }
            '\\' => Piece::Chars(vec![chars.next().expect("dangling escape")]),
            other => Piece::Chars(vec![other]),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for ch in chars.by_ref() {
                    if ch == '}' {
                        break;
                    }
                    spec.push(ch);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repeat count"),
                        hi.trim().parse().expect("bad repeat count"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad repeat count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted repeat bounds in {pat:?}");
        terms.push(Term { piece, min, max });
    }
    terms
}

impl Strategy for &str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for term in parse_pattern(self) {
            let span = (term.max - term.min) as u64 + 1;
            let reps = term.min + rng.below(span) as usize;
            let Piece::Chars(set) = &term.piece;
            for _ in 0..reps {
                out.push(set[rng.below(set.len() as u64) as usize]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_repeat_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..200 {
            let s = "[a-z]{0,12}".gen_value(&mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = TestRng::deterministic();
        let s = "ab[0-9]{3}".gen_value(&mut rng);
        assert!(s.starts_with("ab") && s.len() == 5, "{s:?}");
        assert!(s[2..].chars().all(|c| c.is_ascii_digit()));
    }
}
