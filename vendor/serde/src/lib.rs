//! Offline stub of `serde`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` (no code
//! path serializes anything), so the traits are empty markers and the
//! derive macros expand to nothing.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
